package polynomial

import (
	"fmt"
	"math"
)

// PackedSet is the slab-backed representation of a polynomial set: every
// term of every monomial of every polynomial lives in one flat []Term
// backing array, with a parallel []float64 coefficient array and two
// offset tables delimiting the monomials of each polynomial and the
// terms of each monomial. Compared to the pointer form (*Set holding
// []Polynomial holding []Monomial holding []Term), a PackedSet of m
// monomials costs O(1) allocations instead of O(m), and iterating it
// walks contiguous memory.
//
//	keys:    [k0        k1    k2  ...]          one per polynomial
//	polyOff: [0     2       5  ...]             monomial range of poly i
//	coefs:   [c0 c1 c2 c3 c4 ...]               one per monomial
//	monOff:  [0  2  3  6  6  ...]               term range of monomial i
//	terms:   [t t|t|t t t| |...]                flat slab
//
// A PackedSet is append-only: Add copies the polynomial's monomials into
// the slabs (the input is NOT retained, so callers may reuse scratch
// storage — the opposite of Set.Add, which keeps the value it is given).
// View exposes the packed storage as an ordinary *Set whose Monomials
// alias the slabs zero-copy, so every existing consumer of the pointer
// API works unchanged on packed data.
type PackedSet struct {
	names   *Names
	keys    []string
	polyOff []int32   // len(keys)+1; monomial range of polynomial i
	coefs   []float64 // one per monomial
	monOff  []int32   // len(coefs)+1; term range of monomial i
	terms   []Term    // all terms, flat

	view *Set // cached zero-copy view; invalidated by Add
}

// NewPackedSet returns an empty packed set over names (a fresh namespace
// if nil).
func NewPackedSet(names *Names) *PackedSet {
	if names == nil {
		names = NewNames()
	}
	return &PackedSet{names: names, polyOff: []int32{0}, monOff: []int32{0}}
}

// Grow pre-allocates slab capacity for polys polynomials, mons monomials
// and terms terms (any of which may be zero to leave that slab alone).
func (ps *PackedSet) Grow(polys, mons, terms int) {
	if polys > 0 && cap(ps.keys)-len(ps.keys) < polys {
		ps.keys = append(make([]string, 0, len(ps.keys)+polys), ps.keys...)
		ps.polyOff = append(make([]int32, 0, len(ps.polyOff)+polys), ps.polyOff...)
	}
	if mons > 0 && cap(ps.coefs)-len(ps.coefs) < mons {
		ps.coefs = append(make([]float64, 0, len(ps.coefs)+mons), ps.coefs...)
		ps.monOff = append(make([]int32, 0, len(ps.monOff)+mons), ps.monOff...)
	}
	if terms > 0 && cap(ps.terms)-len(ps.terms) < terms {
		ps.terms = append(make([]Term, 0, len(ps.terms)+terms), ps.terms...)
	}
}

// Add appends a named polynomial, copying its monomials into the slabs.
// p is not retained. Add fails only if the set overflows the int32
// offset space (≈2.1 billion terms).
func (ps *PackedSet) Add(key string, p Polynomial) error {
	if int64(len(ps.coefs))+int64(len(p.Mons)) > math.MaxInt32 ||
		int64(len(ps.terms))+int64(p.NumTerms()) > math.MaxInt32 {
		return fmt.Errorf("polynomial: PackedSet overflows int32 offsets")
	}
	for _, m := range p.Mons {
		ps.coefs = append(ps.coefs, m.Coef)
		ps.terms = append(ps.terms, m.Terms...)
		ps.monOff = append(ps.monOff, int32(len(ps.terms)))
	}
	ps.keys = append(ps.keys, key)
	ps.polyOff = append(ps.polyOff, int32(len(ps.coefs)))
	ps.view = nil
	return nil
}

// BeginPoly opens a new polynomial under key; monomials are then
// appended with AppendMonomial (or AppendTerm+EndMonomial) until the
// next BeginPoly. This is the append-only producer path for readers and
// capture: no intermediate Polynomial value is built.
func (ps *PackedSet) BeginPoly(key string) {
	ps.keys = append(ps.keys, key)
	ps.polyOff = append(ps.polyOff, int32(len(ps.coefs)))
	ps.view = nil
}

// AppendMonomial appends one canonical monomial (coefficient plus term
// vector, which is copied) to the currently open polynomial.
func (ps *PackedSet) AppendMonomial(coef float64, terms []Term) {
	ps.coefs = append(ps.coefs, coef)
	ps.terms = append(ps.terms, terms...)
	ps.monOff = append(ps.monOff, int32(len(ps.terms)))
	ps.polyOff[len(ps.polyOff)-1] = int32(len(ps.coefs))
}

// Len returns the number of polynomials.
func (ps *PackedSet) Len() int { return len(ps.keys) }

// Size returns the total number of monomials.
func (ps *PackedSet) Size() int { return len(ps.coefs) }

// NumTerms returns the total number of variable occurrences.
func (ps *PackedSet) NumTerms() int { return len(ps.terms) }

// Names returns the shared namespace.
func (ps *PackedSet) Names() *Names { return ps.names }

// Namespace returns the shared namespace (SetSource form).
func (ps *PackedSet) Namespace() *Names { return ps.names }

// Key returns the key of polynomial i.
func (ps *PackedSet) Key(i int) string { return ps.keys[i] }

// Coefs returns the coefficient slab (read-only to callers).
func (ps *PackedSet) Coefs() []float64 { return ps.coefs }

// Terms returns the term slab (read-only to callers).
func (ps *PackedSet) Terms() []Term { return ps.terms }

// MonRange returns the [lo,hi) monomial range of polynomial i.
func (ps *PackedSet) MonRange(i int) (int32, int32) {
	return ps.polyOff[i], ps.polyOff[i+1]
}

// TermRange returns the [lo,hi) term range of monomial m.
func (ps *PackedSet) TermRange(m int) (int32, int32) {
	return ps.monOff[m], ps.monOff[m+1]
}

// UsedVars returns the distinct variables appearing in the set,
// ascending — a single pass over the flat term slab.
func (ps *PackedSet) UsedVars() []Var {
	if len(ps.terms) == 0 {
		return nil
	}
	maxVar := Var(0)
	for _, t := range ps.terms {
		if t.Var > maxVar {
			maxVar = t.Var
		}
	}
	seen := make([]bool, int(maxVar)+1)
	n := 0
	for _, t := range ps.terms {
		if !seen[t.Var] {
			seen[t.Var] = true
			n++
		}
	}
	out := make([]Var, 0, n)
	for v, ok := range seen {
		if ok {
			out = append(out, Var(v))
		}
	}
	return out
}

// ResidentMonomials reports the monomials held in memory — all of them,
// a PackedSet is fully resident.
func (ps *PackedSet) ResidentMonomials() int { return len(ps.coefs) }

// PeakResidentMonomials equals ResidentMonomials for an in-memory set.
func (ps *PackedSet) PeakResidentMonomials() int { return len(ps.coefs) }

// View returns the packed storage as an ordinary *Set: Keys alias the
// packed keys, and every Monomial's Terms alias the flat slab (full
// slice expressions keep appends from clobbering neighbors). The view is
// built once and cached until the next Add. Callers must treat the view
// as read-only, like any shard passed through ForEachShard.
func (ps *PackedSet) View() *Set {
	if ps.view != nil {
		return ps.view
	}
	mons := make([]Monomial, len(ps.coefs))
	for i := range mons {
		lo, hi := ps.monOff[i], ps.monOff[i+1]
		mons[i] = Monomial{Coef: ps.coefs[i], Terms: ps.terms[lo:hi:hi]}
	}
	polys := make([]Polynomial, len(ps.keys))
	for i := range polys {
		lo, hi := ps.polyOff[i], ps.polyOff[i+1]
		polys[i] = Polynomial{Mons: mons[lo:hi:hi]}
	}
	ps.view = &Set{Names: ps.names, Keys: ps.keys, Polys: polys}
	return ps.view
}

// ForEachShard presents the packed set as a single resident shard (its
// zero-copy view), making *PackedSet a SetSource.
func (ps *PackedSet) ForEachShard(fn func(i, firstPoly int, s *Set) error) error {
	return fn(0, 0, ps.View())
}

// Pack copies an arbitrary SetSource into a packed set (shard order, so
// the result is bit-identical to materializing the source).
func Pack(src SetSource) (*PackedSet, error) {
	ps := NewPackedSet(src.Namespace())
	ps.Grow(src.Len(), src.Size(), 0)
	if err := Copy(src, ps); err != nil {
		return nil, err
	}
	return ps, nil
}

// PackSet copies an in-memory Set into a packed set. The only failure
// mode is a set whose monomial or term count overflows the packed
// layout's int32 offsets.
func PackSet(s *Set) (*PackedSet, error) {
	ps := NewPackedSet(s.Names)
	nt := 0
	for _, p := range s.Polys {
		nt += p.NumTerms()
	}
	ps.Grow(s.Len(), s.Size(), nt)
	for i, key := range s.Keys {
		if err := ps.Add(key, s.Polys[i]); err != nil {
			return nil, err
		}
	}
	return ps, nil
}
