package polynomial

import (
	"math/rand"
	"testing"
)

func TestDerivativeBasics(t *testing.T) {
	n := NewNames()
	x, _ := n.Var("x"), n.Var("y")

	cases := []struct{ in, want string }{
		{"x", "1"},
		{"5", "0"},
		{"x^3", "3*x^2"},
		{"2*x^2*y + 3*y", "4*x*y"},
		{"x + x^2 + x^3", "1 + 2*x + 3*x^2"},
		{"y^4", "0"},
	}
	for _, tc := range cases {
		p := MustParse(tc.in, n)
		want := MustParse(tc.want, n)
		got := Derivative(p, x)
		if !Equal(got, want) {
			t.Errorf("d/dx %s = %s, want %s", tc.in, got.String(n), tc.want)
		}
	}
}

func TestDerivativeLinearityAndProductRule(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	n := NewNames()
	for i := 0; i < 4; i++ {
		n.Var(string(rune('a' + i)))
	}
	v := Var(0)
	for i := 0; i < 200; i++ {
		p, q := randPoly(r, 4), randPoly(r, 4)
		// d(p+q) = dp + dq
		if !Equal(Derivative(Add(p, q), v), Add(Derivative(p, v), Derivative(q, v))) {
			t.Fatal("linearity broken")
		}
		// d(p*q) = dp*q + p*dq
		lhs := Derivative(Mul(p, q), v)
		rhs := Add(Mul(Derivative(p, v), q), Mul(p, Derivative(q, v)))
		if !Equal(lhs, rhs) {
			t.Fatalf("product rule broken:\np=%s\nq=%s", p.String(n), q.String(n))
		}
	}
}

func TestDerivativeNumerically(t *testing.T) {
	// Finite differences approximate the symbolic derivative.
	n := NewNames()
	p := MustParse("2*x^2*y + 3*x + y^2", n)
	x, _ := n.Lookup("x")
	at := func(xv, yv float64) float64 {
		return p.Eval(func(v Var) float64 {
			if v == x {
				return xv
			}
			return yv
		})
	}
	d := Derivative(p, x)
	got := d.Eval(func(v Var) float64 {
		if v == x {
			return 1.5
		}
		return 2.0
	})
	h := 1e-6
	want := (at(1.5+h, 2) - at(1.5-h, 2)) / (2 * h)
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("symbolic %v vs numeric %v", got, want)
	}
}

func TestSubstituteBasics(t *testing.T) {
	n := NewNames()
	x, _ := n.Var("x"), n.Var("y")

	// x -> y+1 in x^2 gives y^2 + 2y + 1.
	p := MustParse("x^2", n)
	q := MustParse("y + 1", n)
	got := Substitute(p, x, q)
	want := MustParse("y^2 + 2*y + 1", n)
	if !Equal(got, want) {
		t.Fatalf("got %s", got.String(n))
	}

	// Substitution into a polynomial without the variable is identity.
	r := MustParse("3*y + 7", n)
	if !Equal(Substitute(r, x, q), r) {
		t.Fatal("identity substitution broken")
	}

	// Substituting a constant equals partial evaluation.
	s := MustParse("2*x*y + x^2 + 5", n)
	bySub := Substitute(s, x, Const(3))
	byPartial := PartialEval(s, func(v Var) (float64, bool) {
		if v == x {
			return 3, true
		}
		return 0, false
	})
	if !Equal(bySub, byPartial) {
		t.Fatalf("substitute const %s != partial eval %s", bySub.String(n), byPartial.String(n))
	}
}

func TestSubstituteEvalConsistency(t *testing.T) {
	// Eval(Substitute(p, v, q), a) == Eval(p, a[v := Eval(q, a)]).
	r := rand.New(rand.NewSource(83))
	n := NewNames()
	for i := 0; i < 4; i++ {
		n.Var(string(rune('a' + i)))
	}
	for i := 0; i < 200; i++ {
		p, q := randPoly(r, 4), randPoly(r, 4)
		v := Var(r.Intn(4))
		vals := randVal(r, 4)
		val := func(u Var) float64 { return vals[u] }
		qAt := q.Eval(val)
		patched := func(u Var) float64 {
			if u == v {
				return qAt
			}
			return vals[u]
		}
		lhs := Substitute(p, v, q).Eval(val)
		rhs := p.Eval(patched)
		if lhs != rhs {
			t.Fatalf("substitution/eval mismatch: %v vs %v\np=%s q=%s v=%s",
				lhs, rhs, p.String(n), q.String(n), n.Name(v))
		}
	}
}

func TestSubstituteRefinementUseCase(t *testing.T) {
	// The refinement scenario from the docs: replace a meta-variable by a
	// convex combination of its leaves.
	n := NewNames()
	sb := n.Var("SB")
	p := New(Mono(10, T(sb), T(n.Var("m1"))))
	refined := Substitute(p, sb, MustParse("0.5*b1 + 0.5*b2", n))
	want := MustParse("5*b1*m1 + 5*b2*m1", n)
	if !Equal(refined, want) {
		t.Fatalf("refined = %s", refined.String(n))
	}
}

func TestPowPoly(t *testing.T) {
	n := NewNames()
	q := MustParse("x + 1", n)
	if got, want := powPoly(q, 0), Const(1); !Equal(got, want) {
		t.Fatal("q^0 != 1")
	}
	if got := powPoly(q, 3); !Equal(got, MustParse("x^3 + 3*x^2 + 3*x + 1", n)) {
		t.Fatalf("q^3 = %s", got.String(n))
	}
}
