package polynomial

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomTestSet builds a pointer-form Set with the shapes that stress the
// packed layout: empty polynomials, constant monomials (no terms),
// repeated variables (merged by the Builder), and multi-term monomials.
func randomTestSet(r *rand.Rand, names *Names) *Set {
	set := NewSet(names)
	nPolys := r.Intn(40)
	for pi := 0; pi < nPolys; pi++ {
		var b Builder
		nMons := r.Intn(6) // 0 leaves an empty polynomial
		for mi := 0; mi < nMons; mi++ {
			coef := float64(r.Intn(19)-9) + 0.25*float64(r.Intn(4))
			terms := make([]Term, r.Intn(4))
			for ti := range terms {
				terms[ti] = TExp(names.Var(fmt.Sprintf("v%d", r.Intn(12))), int32(1+r.Intn(3)))
			}
			b.Add(coef, terms...)
		}
		set.Add(fmt.Sprintf("k%d", pi), b.Polynomial())
	}
	return set
}

// samePackedAsSet checks bit-identity between a packed set's view and a
// pointer set: keys, monomial order, coefficient bits, and canonical term
// vectors must all coincide.
func samePackedAsSet(t *testing.T, label string, ps *PackedSet, want *Set) {
	t.Helper()
	got := ps.View()
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("%s: %d polys, want %d", label, len(got.Keys), len(want.Keys))
	}
	for i := range want.Keys {
		if got.Keys[i] != want.Keys[i] {
			t.Fatalf("%s: key %d = %q, want %q", label, i, got.Keys[i], want.Keys[i])
		}
		gp, wp := got.Polys[i], want.Polys[i]
		if len(gp.Mons) != len(wp.Mons) {
			t.Fatalf("%s: poly %d has %d mons, want %d", label, i, len(gp.Mons), len(wp.Mons))
		}
		for mi := range wp.Mons {
			gm, wm := gp.Mons[mi], wp.Mons[mi]
			if math.Float64bits(gm.Coef) != math.Float64bits(wm.Coef) {
				t.Fatalf("%s: poly %d mon %d coef %v, want %v", label, i, mi, gm.Coef, wm.Coef)
			}
			if len(gm.Terms) != len(wm.Terms) {
				t.Fatalf("%s: poly %d mon %d has %d terms, want %d", label, i, mi, len(gm.Terms), len(wm.Terms))
			}
			for ti := range wm.Terms {
				if gm.Terms[ti] != wm.Terms[ti] {
					t.Fatalf("%s: poly %d mon %d term %d = %+v, want %+v", label, i, mi, ti, gm.Terms[ti], wm.Terms[ti])
				}
			}
		}
	}
}

// TestPackedRoundTripBitIdentical: packing a pointer Set and viewing it
// back must be bit-identical, and re-packing the view must reproduce the
// same slabs — for many random shapes.
func TestPackedRoundTripBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(977))
	for trial := 0; trial < 200; trial++ {
		names := NewNames()
		set := randomTestSet(r, names)
		ps, err := PackSet(set)
		if err != nil {
			t.Fatal(err)
		}
		samePackedAsSet(t, fmt.Sprintf("trial %d pack", trial), ps, set)

		// Pointer -> packed -> pointer -> packed: the second packing must
		// match the first slab-for-slab.
		ps2, err := Pack(ps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		samePackedAsSet(t, fmt.Sprintf("trial %d repack", trial), ps2, set)

		// And copying the view through the generic sink path lands on the
		// identical pointer set.
		back := NewSet(names)
		if err := Copy(ps, back); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Len() != set.Len() {
			t.Fatalf("trial %d: copied %d polys, want %d", trial, back.Len(), set.Len())
		}
		for i := range set.Keys {
			if back.Keys[i] != set.Keys[i] || !Equal(back.Polys[i], set.Polys[i]) {
				t.Fatalf("trial %d: polynomial %d differs after round trip", trial, i)
			}
		}
	}
}

// TestPackedBuilderPathsAgree: the BeginPoly/AppendMonomial producer path
// must build the same slabs Add does.
func TestPackedBuilderPathsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	names := NewNames()
	set := randomTestSet(r, names)

	viaAdd := NewPackedSet(names)
	viaAppend := NewPackedSet(names)
	for i, key := range set.Keys {
		if err := viaAdd.Add(key, set.Polys[i]); err != nil {
			t.Fatal(err)
		}
		viaAppend.BeginPoly(key)
		for _, m := range set.Polys[i].Mons {
			viaAppend.AppendMonomial(m.Coef, m.Terms)
		}
	}
	samePackedAsSet(t, "Add", viaAdd, set)
	samePackedAsSet(t, "BeginPoly/AppendMonomial", viaAppend, set)
	if viaAdd.Size() != viaAppend.Size() || viaAdd.NumTerms() != viaAppend.NumTerms() {
		t.Fatalf("slab shapes differ: %d/%d mons, %d/%d terms",
			viaAdd.Size(), viaAppend.Size(), viaAdd.NumTerms(), viaAppend.NumTerms())
	}
}

// TestPackedAddDoesNotRetain: Add documents that the input polynomial is
// copied, so mutating the caller's storage afterwards must not reach the
// packed slabs.
func TestPackedAddDoesNotRetain(t *testing.T) {
	names := NewNames()
	terms := []Term{T(names.Var("x")), T(names.Var("y"))}
	p := Polynomial{Mons: []Monomial{{Coef: 2, Terms: terms}}}
	ps := NewPackedSet(names)
	if err := ps.Add("k", p); err != nil {
		t.Fatal(err)
	}
	terms[0] = TExp(names.Var("z"), 7)
	p.Mons[0].Coef = -1
	got := ps.View().Polys[0].Mons[0]
	if got.Coef != 2 || got.Terms[0] != T(names.Var("x")) {
		t.Fatalf("packed slab aliases caller storage: %+v", got)
	}
}

// FuzzPackedRoundTrip drives the round trip from fuzzed shape parameters.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		names := NewNames()
		set := randomTestSet(r, names)
		ps, err := PackSet(set)
		if err != nil {
			t.Fatal(err)
		}
		samePackedAsSet(t, "fuzz", ps, set)
		back := NewSet(names)
		if err := Copy(ps, back); err != nil {
			t.Fatal(err)
		}
		for i := range set.Keys {
			if back.Keys[i] != set.Keys[i] || !Equal(back.Polys[i], set.Polys[i]) {
				t.Fatalf("polynomial %d differs after round trip", i)
			}
		}
	})
}
