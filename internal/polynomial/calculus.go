package polynomial

// Derivative returns ∂p/∂v. For hypothetical reasoning this is the exact
// sensitivity of a result to a provenance variable: how much the output
// moves per unit change of the variable, at any valuation point.
func Derivative(p Polynomial, v Var) Polynomial {
	var b Builder
	for _, m := range p.Mons {
		e, ok := m.ExpOf(v)
		if !ok {
			continue
		}
		nm := Monomial{Coef: m.Coef * float64(e), Terms: make([]Term, 0, len(m.Terms))}
		for _, t := range m.Terms {
			if t.Var == v {
				if t.Exp > 1 {
					nm.Terms = append(nm.Terms, Term{Var: v, Exp: t.Exp - 1})
				}
				continue
			}
			nm.Terms = append(nm.Terms, t)
		}
		b.AddMonomial(nm)
	}
	return b.Polynomial()
}

// Substitute replaces every occurrence of v in p by the polynomial q,
// expanding powers: x^e ↦ q^e. Substituting a single variable for another
// is equivalent to MapVars; substituting richer polynomials supports
// refinement scenarios such as "replace the meta-variable by 0.5·a + 0.5·b".
func Substitute(p Polynomial, v Var, q Polynomial) Polynomial {
	var b Builder
	for _, m := range p.Mons {
		e, ok := m.ExpOf(v)
		if !ok {
			b.AddMonomial(m)
			continue
		}
		rest := m.WithoutVar(v)
		term := New(rest)
		pow := powPoly(q, e)
		b.AddPolynomial(Mul(term, pow))
	}
	return b.Polynomial()
}

// powPoly computes q^e by repeated squaring (e >= 0).
func powPoly(q Polynomial, e int32) Polynomial {
	result := Const(1)
	base := q
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}
