package polynomial

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an ordered collection of named provenance polynomials sharing one
// variable namespace — typically one polynomial per output group of a
// provenance-aware query ("the multiset of polynomials that appear in the
// provenance-aware result of query evaluation", §2 of the paper).
type Set struct {
	Names *Names
	Keys  []string
	Polys []Polynomial
}

// NewSet returns an empty set over names (a fresh namespace if nil).
func NewSet(names *Names) *Set {
	if names == nil {
		names = NewNames()
	}
	return &Set{Names: names}
}

// Add appends a named polynomial. The error is always nil; the signature
// makes *Set a SetSink, so streaming producers can feed an in-memory set
// and a spilling ShardBuilder through one code path.
func (s *Set) Add(key string, p Polynomial) error {
	s.Keys = append(s.Keys, key)
	s.Polys = append(s.Polys, p)
	return nil
}

// Grow pre-allocates capacity for n additional polynomials, so a producer
// that knows its size (a ShardBuilder sizing the next shard from the last
// one) avoids append-doubling churn on the key and polynomial arrays.
func (s *Set) Grow(n int) {
	if cap(s.Keys)-len(s.Keys) < n {
		ks := make([]string, len(s.Keys), len(s.Keys)+n)
		copy(ks, s.Keys)
		s.Keys = ks
	}
	if cap(s.Polys)-len(s.Polys) < n {
		ps := make([]Polynomial, len(s.Polys), len(s.Polys)+n)
		copy(ps, s.Polys)
		s.Polys = ps
	}
}

// Len returns the number of polynomials.
func (s *Set) Len() int { return len(s.Polys) }

// Size returns the total number of monomials — the provenance size measure
// optimized by COBRA.
func (s *Set) Size() int {
	n := 0
	for _, p := range s.Polys {
		n += len(p.Mons)
	}
	return n
}

// NumTerms returns the total number of variable occurrences across the set.
func (s *Set) NumTerms() int {
	n := 0
	for _, p := range s.Polys {
		n += p.NumTerms()
	}
	return n
}

// UsedVars returns the distinct variables appearing in the set, ascending.
func (s *Set) UsedVars() []Var {
	var vs []Var
	var seen map[Var]bool
	for _, p := range s.Polys {
		vs, seen = p.Vars(vs, seen)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// NumVars returns the number of distinct variables appearing in the set —
// the expressiveness measure maximized by COBRA.
func (s *Set) NumVars() int { return len(s.UsedVars()) }

// Poly returns the polynomial stored under key, or false if absent. Keys are
// not required to be unique; the first match wins.
func (s *Set) Poly(key string) (Polynomial, bool) {
	for i, k := range s.Keys {
		if k == key {
			return s.Polys[i], true
		}
	}
	return Polynomial{}, false
}

// MapVars returns a new Set with every variable remapped through f,
// re-canonicalizing each polynomial (this is where compression happens:
// monomials that become identical merge). The namespace is shared.
func (s *Set) MapVars(f func(Var) Var) *Set {
	out := &Set{Names: s.Names, Keys: append([]string(nil), s.Keys...), Polys: make([]Polynomial, len(s.Polys))}
	for i, p := range s.Polys {
		out.Polys[i] = MapVars(p, f)
	}
	return out
}

// EvalAll evaluates every polynomial under val, in order.
func (s *Set) EvalAll(val func(Var) float64) []float64 {
	out := make([]float64, len(s.Polys))
	for i, p := range s.Polys {
		out[i] = p.Eval(val)
	}
	return out
}

// Clone returns a deep copy of the set sharing the namespace.
func (s *Set) Clone() *Set {
	out := &Set{Names: s.Names, Keys: append([]string(nil), s.Keys...), Polys: make([]Polynomial, len(s.Polys))}
	for i, p := range s.Polys {
		out.Polys[i] = p.Clone()
	}
	return out
}

// String renders the set one polynomial per line as "key: poly".
func (s *Set) String() string {
	var sb strings.Builder
	for i, k := range s.Keys {
		fmt.Fprintf(&sb, "%s: %s\n", k, s.Polys[i].String(s.Names))
	}
	return sb.String()
}
