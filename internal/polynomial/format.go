package polynomial

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// String renders p in the paper's notation, e.g.
// "208.8*p1*m1 + 240*p1*m3 - 2*x^2". The zero polynomial renders as "0".
func (p Polynomial) String(names *Names) string {
	if len(p.Mons) == 0 {
		return "0"
	}
	var sb strings.Builder
	for i, m := range p.Mons {
		c := m.Coef
		if i == 0 {
			if c < 0 {
				sb.WriteString("-")
				c = -c
			}
		} else {
			if c < 0 {
				sb.WriteString(" - ")
				c = -c
			} else {
				sb.WriteString(" + ")
			}
		}
		writeMono(&sb, c, m.Terms, names)
	}
	return sb.String()
}

func writeMono(sb *strings.Builder, absCoef float64, terms []Term, names *Names) {
	wroteCoef := false
	if absCoef != 1 || len(terms) == 0 {
		sb.WriteString(formatCoef(absCoef))
		wroteCoef = true
	}
	for i, t := range terms {
		if i > 0 || wroteCoef {
			sb.WriteString("*")
		}
		sb.WriteString(names.Name(t.Var))
		if t.Exp != 1 {
			sb.WriteString("^")
			sb.WriteString(strconv.FormatInt(int64(t.Exp), 10))
		}
	}
}

func formatCoef(c float64) string {
	if c == math.Trunc(c) && math.Abs(c) < 1e15 {
		return strconv.FormatFloat(c, 'f', -1, 64)
	}
	return strconv.FormatFloat(c, 'g', -1, 64)
}

// ParseError reports a syntax error in a polynomial literal.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("polynomial: parse error at %d in %q: %s", e.Pos, e.Input, e.Msg)
}

// Parse parses the textual polynomial format produced by String, interning
// variables into names. The grammar:
//
//	poly  := [sign] mono (sign mono)*
//	mono  := number | factor ('*' factor)*   (a leading number is the coefficient)
//	factor:= number | ident ['^' integer]
//	ident := [A-Za-z_][A-Za-z0-9_.:-]*
//
// Whitespace is insignificant. Exponents must be positive integers.
func Parse(input string, names *Names) (Polynomial, error) {
	p := &parser{in: input, names: names}
	poly, err := p.parse()
	if err != nil {
		return Polynomial{}, err
	}
	return poly, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(input string, names *Names) Polynomial {
	p, err := Parse(input, names)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	in    string
	pos   int
	names *Names
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Input: p.in, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *parser) parse() (Polynomial, error) {
	var b Builder
	p.skipSpace()
	if p.pos >= len(p.in) {
		return Polynomial{}, p.errf("empty input")
	}
	sign := 1.0
	if c := p.peek(); c == '+' || c == '-' {
		if c == '-' {
			sign = -1
		}
		p.pos++
	}
	for {
		m, err := p.parseMono(sign)
		if err != nil {
			return Polynomial{}, err
		}
		b.AddMonomial(m)
		p.skipSpace()
		if p.pos >= len(p.in) {
			break
		}
		switch p.peek() {
		case '+':
			sign = 1
		case '-':
			sign = -1
		default:
			return Polynomial{}, p.errf("expected '+' or '-', got %q", p.peek())
		}
		p.pos++
	}
	return b.Polynomial(), nil
}

func (p *parser) parseMono(sign float64) (Monomial, error) {
	p.skipSpace()
	m := Monomial{Coef: sign}
	sawFactor := false
	for {
		p.skipSpace()
		c := p.peek()
		switch {
		case c >= '0' && c <= '9' || c == '.':
			f, err := p.parseNumber()
			if err != nil {
				return Monomial{}, err
			}
			m.Coef *= f
		case isIdentStart(c):
			name := p.parseIdent()
			exp := int32(1)
			p.skipSpace()
			if p.peek() == '^' {
				p.pos++
				p.skipSpace()
				e, err := p.parseInt()
				if err != nil {
					return Monomial{}, err
				}
				if e <= 0 {
					return Monomial{}, p.errf("exponent must be positive, got %d", e)
				}
				exp = int32(e)
			}
			m.Terms = append(m.Terms, Term{Var: p.names.Var(name), Exp: exp})
		default:
			return Monomial{}, p.errf("expected number or identifier, got %q", c)
		}
		sawFactor = true
		p.skipSpace()
		if p.peek() != '*' {
			break
		}
		p.pos++
	}
	if !sawFactor {
		return Monomial{}, p.errf("empty monomial")
	}
	m.normalize()
	return m, nil
}

func (p *parser) parseNumber() (float64, error) {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		// Exponent sign directly after e/E.
		if (c == '+' || c == '-') && p.pos > start && (p.in[p.pos-1] == 'e' || p.in[p.pos-1] == 'E') {
			p.pos++
			continue
		}
		break
	}
	f, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.in[start:p.pos])
	}
	return f, nil
}

func (p *parser) parseInt() (int, error) {
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return 0, p.errf("expected integer")
	}
	n, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil {
		return 0, p.errf("bad integer %q", p.in[start:p.pos])
	}
	return n, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	// '-' is deliberately excluded: it would be ambiguous with subtraction.
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.' || c == ':'
}

func (p *parser) parseIdent() string {
	start := p.pos
	p.pos++
	for p.pos < len(p.in) && isIdentChar(p.in[p.pos]) {
		p.pos++
	}
	return p.in[start:p.pos]
}
