package valuation

import (
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// Program is a polynomial set compiled to flat arrays for fast repeated
// valuation — the hot path of hypothetical reasoning, where an analyst
// applies many scenarios to the same provenance. Both the full and the
// compressed provenance are evaluated through Program, so the measured
// speedup isolates the effect of compression.
type Program struct {
	names   *polynomial.Names
	numVars int

	polyOff []int32 // polynomial i covers monomials polyOff[i]..polyOff[i+1]
	coefs   []float64
	monOff  []int32 // monomial j covers terms monOff[j]..monOff[j+1]
	tVars   []int32
	tExps   []int32
}

// Compile flattens set into a Program.
func Compile(set *polynomial.Set) *Program {
	p := &Program{names: set.Names, numVars: set.Names.Len()}
	p.polyOff = make([]int32, 1, len(set.Polys)+1)
	for _, poly := range set.Polys {
		for _, m := range poly.Mons {
			p.coefs = append(p.coefs, m.Coef)
			p.monOff = append(p.monOff, int32(len(p.tVars)))
			for _, t := range m.Terms {
				p.tVars = append(p.tVars, int32(t.Var))
				p.tExps = append(p.tExps, t.Exp)
			}
		}
		p.polyOff = append(p.polyOff, int32(len(p.coefs)))
	}
	p.monOff = append(p.monOff, int32(len(p.tVars)))
	return p
}

// NumPolys returns the number of polynomials.
func (p *Program) NumPolys() int { return len(p.polyOff) - 1 }

// Size returns the total number of monomials.
func (p *Program) Size() int { return len(p.coefs) }

// NumVars returns the namespace size the program was compiled against.
func (p *Program) NumVars() int { return p.numVars }

// Eval evaluates all polynomials under the dense valuation vals (indexed by
// Var; callers typically use Assignment.Dense). The result is appended into
// out (reused if capacity allows) and returned.
func (p *Program) Eval(vals []float64, out []float64) []float64 {
	out = out[:0]
	for pi := 0; pi+1 < len(p.polyOff); pi++ {
		sum := 0.0
		for mi := p.polyOff[pi]; mi < p.polyOff[pi+1]; mi++ {
			x := p.coefs[mi]
			for ti := p.monOff[mi]; ti < p.monOff[mi+1]; ti++ {
				v := vals[p.tVars[ti]]
				if e := p.tExps[ti]; e == 1 {
					x *= v
				} else {
					x *= powInt(v, e)
				}
			}
			sum += x
		}
		out = append(out, sum)
	}
	return out
}

// EvalAssignment evaluates under a sparse Assignment.
func (p *Program) EvalAssignment(a *Assignment, out []float64) []float64 {
	return p.Eval(a.Dense(p.numVars), out)
}

func powInt(x float64, e int32) float64 {
	r := 1.0
	for e > 0 {
		if e&1 == 1 {
			r *= x
		}
		x *= x
		e >>= 1
	}
	return r
}
