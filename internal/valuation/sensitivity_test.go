package valuation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

func TestSensitivityHandComputed(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	// P = 10*x*y + 3*x; at the identity point: dP/dx = 10+3 = 13, dP/dy = 10.
	set.Add("g", polynomial.MustParse("10*x*y + 3*x", names))
	s := Sensitivity(set, New(names))
	if len(s) != 2 {
		t.Fatalf("entries = %d", len(s))
	}
	if s[0].Name != "x" || math.Abs(s[0].Total-13) > 1e-12 {
		t.Fatalf("x: %+v", s[0])
	}
	if s[1].Name != "y" || math.Abs(s[1].Total-10) > 1e-12 {
		t.Fatalf("y: %+v", s[1])
	}
}

func TestSensitivityMatchesSymbolicDerivative(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	names := polynomial.NewNames()
	vars := make([]polynomial.Var, 5)
	for i := range vars {
		vars[i] = names.Var(fmt.Sprintf("v%d", i))
	}
	for trial := 0; trial < 60; trial++ {
		set := polynomial.NewSet(names)
		for g := 0; g < 3; g++ {
			var b polynomial.Builder
			for m := 0; m < 1+r.Intn(8); m++ {
				var terms []polynomial.Term
				for k := 0; k < r.Intn(4); k++ {
					terms = append(terms, polynomial.TExp(vars[r.Intn(5)], int32(1+r.Intn(3))))
				}
				b.Add(float64(r.Intn(9)-4), terms...)
			}
			set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
		}
		a := New(names)
		for _, v := range vars {
			a.SetVar(v, 0.5+r.Float64())
		}
		got := Sensitivity(set, a)
		for _, entry := range got {
			want := 0.0
			for _, p := range set.Polys {
				want += math.Abs(polynomial.Derivative(p, entry.Var).Eval(a.Get))
			}
			if math.Abs(entry.Total-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d var %s: fast %v != symbolic %v", trial, entry.Name, entry.Total, want)
			}
		}
	}
}

func TestSensitivitySorted(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("g", polynomial.MustParse("1*a + 5*b + 3*c", names))
	s := Sensitivity(set, New(names))
	if s[0].Name != "b" || s[1].Name != "c" || s[2].Name != "a" {
		t.Fatalf("order: %+v", s)
	}
}

func TestSensitivityEmptySet(t *testing.T) {
	names := polynomial.NewNames()
	if s := Sensitivity(polynomial.NewSet(names), New(names)); len(s) != 0 {
		t.Fatalf("expected empty, got %+v", s)
	}
}
