// Package valuation implements hypothetical-reasoning valuations: assigning
// values to provenance (meta-)variables and evaluating provenance
// polynomials under them, quickly. It provides the induced default values
// for meta-variables (the average of the abstracted variables' values, as in
// the demo's Figure-5 screen), accuracy metrics comparing compressed against
// full provenance, and the assignment-speedup measurement the demo reports.
package valuation

import (
	"fmt"
	"sort"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// Assignment is a sparse valuation of provenance variables. Unassigned
// variables default to 1, the identity for the multiplicative
// parameterization used in the paper (e.g. m3 = 0.8 means "March prices
// decreased by 20%"; untouched variables keep their factor of 1).
type Assignment struct {
	names *polynomial.Names
	vals  map[polynomial.Var]float64
}

// New returns an empty assignment over the namespace.
func New(names *polynomial.Names) *Assignment {
	return &Assignment{names: names, vals: make(map[polynomial.Var]float64)}
}

// Names returns the namespace of the assignment.
func (a *Assignment) Names() *polynomial.Names { return a.names }

// Set assigns value x to the variable called name. It is an error if the
// name was never interned (catches scenario typos).
func (a *Assignment) Set(name string, x float64) error {
	v, ok := a.names.Lookup(name)
	if !ok {
		return fmt.Errorf("valuation: unknown variable %q", name)
	}
	a.vals[v] = x
	return nil
}

// MustSet is Set that panics on unknown names; for test and demo literals.
func (a *Assignment) MustSet(name string, x float64) *Assignment {
	if err := a.Set(name, x); err != nil {
		panic(err)
	}
	return a
}

// SetVar assigns value x to v.
func (a *Assignment) SetVar(v polynomial.Var, x float64) { a.vals[v] = x }

// Get returns the value of v (1 if unassigned).
func (a *Assignment) Get(v polynomial.Var) float64 {
	if x, ok := a.vals[v]; ok {
		return x
	}
	return 1
}

// Has reports whether v is explicitly assigned.
func (a *Assignment) Has(v polynomial.Var) bool {
	_, ok := a.vals[v]
	return ok
}

// Len returns the number of explicitly assigned variables.
func (a *Assignment) Len() int { return len(a.vals) }

// Func adapts the assignment to the evaluation callback form.
func (a *Assignment) Func() func(polynomial.Var) float64 { return a.Get }

// Dense materializes the assignment as a slice of length n indexed by Var,
// with 1 for unassigned variables.
func (a *Assignment) Dense(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	//cobra:deterministic writes to distinct slice indices; visit order cannot reach the result
	for v, x := range a.vals {
		if int(v) < n {
			out[v] = x
		}
	}
	return out
}

// Clone returns an independent copy.
func (a *Assignment) Clone() *Assignment {
	c := New(a.names)
	//cobra:deterministic map-to-map copy; visit order cannot reach the result
	for v, x := range a.vals {
		c.vals[v] = x
	}
	return c
}

// Items returns the explicit (name, value) pairs sorted by name.
func (a *Assignment) Items() []Item {
	out := make([]Item, 0, len(a.vals))
	for v, x := range a.vals {
		out = append(out, Item{Name: a.names.Name(v), Var: v, Value: x})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Item is one explicit assignment entry.
type Item struct {
	Name  string
	Var   polynomial.Var
	Value float64
}

// Induced computes the default valuation for the meta-variables of the cuts:
// each meta-variable gets the unweighted average of its abstracted leaves'
// values under base ("a default value (average over the abstracted
// variables' values)", §3). Context variables keep their base values.
func Induced(base *Assignment, cuts ...abstraction.Cut) *Assignment {
	out := base.Clone()
	for _, c := range cuts {
		groups := c.GroupedLeaves()
		for i, id := range c.Nodes {
			leaves := groups[i]
			if len(leaves) == 0 {
				continue
			}
			sum := 0.0
			for _, l := range leaves {
				sum += base.Get(l)
			}
			out.SetVar(c.Tree.Node(id).Var, sum/float64(len(leaves)))
		}
	}
	return out
}

// InducedWeighted is Induced with leaves weighted by their total absolute
// coefficient mass in set — an extension evaluated in the ablation study
// (design choice #2 in DESIGN.md). Leaves that never occur get weight 0; if
// an entire group has zero mass the unweighted average is used.
func InducedWeighted(base *Assignment, set *polynomial.Set, cuts ...abstraction.Cut) *Assignment {
	mass := make(map[polynomial.Var]float64)
	for _, p := range set.Polys {
		for _, m := range p.Mons {
			w := m.Coef
			if w < 0 {
				w = -w
			}
			for _, t := range m.Terms {
				mass[t.Var] += w
			}
		}
	}
	out := base.Clone()
	for _, c := range cuts {
		groups := c.GroupedLeaves()
		for i, id := range c.Nodes {
			leaves := groups[i]
			if len(leaves) == 0 {
				continue
			}
			var num, den float64
			for _, l := range leaves {
				num += mass[l] * base.Get(l)
				den += mass[l]
			}
			var avg float64
			if den == 0 {
				for _, l := range leaves {
					avg += base.Get(l)
				}
				avg /= float64(len(leaves))
			} else {
				avg = num / den
			}
			out.SetVar(c.Tree.Node(id).Var, avg)
		}
	}
	return out
}

// EvalSet evaluates every polynomial of set under a, in order.
func EvalSet(set *polynomial.Set, a *Assignment) []float64 {
	return set.EvalAll(a.Get)
}
