package valuation

import "math"

// Accuracy summarizes the deviation of compressed-provenance results from
// full-provenance results across output groups — what the demo UI shows as
// "the changes in the analysis query results using valuation of the
// compressed provenance with respect to valuation of the full provenance".
type Accuracy struct {
	Groups  int
	MaxAbs  float64 // max |full - comp|
	MeanAbs float64
	MaxRel  float64 // max |full - comp| / max(|full|, tiny)
	MeanRel float64
	L1      float64 // Σ |full - comp|
	L1Rel   float64 // Σ|full-comp| / Σ|full|
}

// CompareResults computes accuracy metrics between equally long result
// vectors. It panics if lengths differ (groups must correspond 1:1).
func CompareResults(full, comp []float64) Accuracy {
	if len(full) != len(comp) {
		panic("valuation: result vectors have different lengths")
	}
	a := Accuracy{Groups: len(full)}
	if len(full) == 0 {
		return a
	}
	var sumAbs, sumRel, sumFull float64
	for i := range full {
		d := math.Abs(full[i] - comp[i])
		sumAbs += d
		sumFull += math.Abs(full[i])
		if d > a.MaxAbs {
			a.MaxAbs = d
		}
		rel := 0.0
		if f := math.Abs(full[i]); f > 1e-12 {
			rel = d / f
		} else if d > 1e-12 {
			rel = math.Inf(1)
		}
		sumRel += rel
		if rel > a.MaxRel {
			a.MaxRel = rel
		}
	}
	a.MeanAbs = sumAbs / float64(len(full))
	a.MeanRel = sumRel / float64(len(full))
	a.L1 = sumAbs
	if sumFull > 1e-12 {
		a.L1Rel = sumAbs / sumFull
	} else if sumAbs > 1e-12 {
		a.L1Rel = math.Inf(1)
	}
	return a
}

// Exact reports whether the compressed results are exact up to eps
// (relative). A valuation that is constant on every abstraction group is
// always exact — the soundness property of abstraction.
func (a Accuracy) Exact(eps float64) bool {
	return a.MaxRel <= eps && !math.IsInf(a.MaxRel, 1)
}
