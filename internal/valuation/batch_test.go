package valuation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

func TestEvalBatchMatchesSingle(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	for g := 0; g < 4; g++ {
		var b polynomial.Builder
		for m := 0; m < 20; m++ {
			b.Add(float64(r.Intn(9)+1),
				polynomial.T(names.Var(fmt.Sprintf("x%d", r.Intn(10)))),
				polynomial.T(names.Var(fmt.Sprintf("y%d", r.Intn(5)))))
		}
		set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
	}
	prog := Compile(set)

	var batch []*Assignment
	for s := 0; s < 12; s++ {
		a := New(names)
		for v := 0; v < names.Len(); v++ {
			if r.Intn(2) == 0 {
				a.SetVar(polynomial.Var(v), r.Float64()*2)
			}
		}
		batch = append(batch, a)
	}

	got := prog.EvalBatch(batch, nil)
	if len(got) != len(batch) {
		t.Fatalf("rows = %d", len(got))
	}
	for i, a := range batch {
		want := EvalSet(set, a)
		for j := range want {
			if math.Abs(got[i][j]-want[j]) > 1e-9 {
				t.Fatalf("scenario %d group %d: %v != %v", i, j, got[i][j], want[j])
			}
		}
	}

	// Buffer reuse.
	again := prog.EvalBatch(batch, got)
	for i := range again {
		for j := range again[i] {
			if again[i][j] != got[i][j] {
				t.Fatal("reused buffer changed results")
			}
		}
	}
}

func TestEvalBatchNWorkersIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(222))
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	for g := 0; g < 6; g++ {
		var b polynomial.Builder
		for m := 0; m < 40; m++ {
			b.Add(r.Float64()*10-5,
				polynomial.TExp(names.Var(fmt.Sprintf("x%d", r.Intn(20))), int32(1+r.Intn(3))),
				polynomial.T(names.Var(fmt.Sprintf("y%d", r.Intn(8)))))
		}
		set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
	}
	prog := Compile(set)

	for _, scenarios := range []int{1, 7, 100} {
		batch := make([]*Assignment, scenarios)
		for s := range batch {
			a := New(names)
			for v := 0; v < names.Len(); v++ {
				if r.Intn(3) == 0 {
					a.SetVar(polynomial.Var(v), r.Float64()*2)
				}
			}
			batch[s] = a
		}
		want := prog.EvalBatchN(batch, nil, 1)
		for _, workers := range []int{2, 8} {
			got := prog.EvalBatchN(batch, nil, workers)
			if len(got) != len(want) {
				t.Fatalf("scenarios=%d workers=%d: rows = %d, want %d", scenarios, workers, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					// Bit-identical, not approximately equal: the parallel
					// path must evaluate each row exactly like the
					// sequential one.
					if got[i][j] != want[i][j] {
						t.Fatalf("scenarios=%d workers=%d: row %d group %d: %v != %v",
							scenarios, workers, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

func TestEvalBatchEmpty(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("g", polynomial.MustParse("x", names))
	prog := Compile(set)
	if out := prog.EvalBatch(nil, nil); len(out) != 0 {
		t.Fatalf("expected empty, got %v", out)
	}
}
