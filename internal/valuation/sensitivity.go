package valuation

import (
	"math"
	"sort"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// SensitivityEntry reports how strongly the results depend on one variable
// at the current valuation point: Total = Σ_groups |∂P_g/∂v|.
type SensitivityEntry struct {
	Var   polynomial.Var
	Name  string
	Total float64
}

// Sensitivity computes the per-variable sensitivity of every polynomial in
// the set at the assignment point, sorted descending — "which knob moves
// the answer most", a natural guide for choosing hypothetical scenarios and
// for judging what an abstraction may safely group. It evaluates the
// partial derivatives directly (without materializing derivative
// polynomials), in one pass over the monomials.
func Sensitivity(set *polynomial.Set, a *Assignment) []SensitivityEntry {
	totals := make(map[polynomial.Var]float64)
	for _, p := range set.Polys {
		perVar := make(map[polynomial.Var]float64)
		for _, m := range p.Mons {
			// Monomial value and, per term, the derivative factor.
			for ti, t := range m.Terms {
				d := m.Coef * float64(t.Exp) * powFloat(a.Get(t.Var), t.Exp-1)
				for tj, u := range m.Terms {
					if tj == ti {
						continue
					}
					d *= powFloat(a.Get(u.Var), u.Exp)
				}
				perVar[t.Var] += d
			}
		}
		//cobra:deterministic per-variable accumulation into a map keyed by the same Var; visit order cannot reach the result
		for v, d := range perVar {
			totals[v] += math.Abs(d)
		}
	}
	out := make([]SensitivityEntry, 0, len(totals))
	for v, total := range totals {
		out = append(out, SensitivityEntry{Var: v, Name: set.Names.Name(v), Total: total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func powFloat(x float64, e int32) float64 {
	r := 1.0
	for ; e > 0; e-- {
		r *= x
	}
	return r
}
