package valuation

import (
	"github.com/cobra-prov/cobra/internal/parallel"
)

// EvalBatch evaluates the program under many assignments — the multi-analyst
// workload the paper motivates compression with ("applying valuation may be
// performed by multiple analysts"). Results are returned as one row per
// assignment; the out buffer is reused when it has capacity.
func (p *Program) EvalBatch(assignments []*Assignment, out [][]float64) [][]float64 {
	return p.EvalBatchN(assignments, out, 1)
}

// EvalBatchN is EvalBatch distributed over up to workers goroutines. The
// scenarios are chunked into contiguous ranges, one dense valuation arena
// per worker (rebuilt per assignment: most scenario assignments are sparse,
// so re-filling beats allocating), and each row is written to its own output
// slot, so the result rows are bit-identical to EvalBatch's for every worker
// count. workers <= 1 runs sequentially. The assignments must not be mutated
// concurrently with the call.
func (p *Program) EvalBatchN(assignments []*Assignment, out [][]float64, workers int) [][]float64 {
	if cap(out) >= len(assignments) {
		out = out[:len(assignments)]
	} else {
		out = make([][]float64, len(assignments))
	}
	parallel.Chunks(workers, len(assignments), func(_, lo, hi int) {
		dense := make([]float64, p.numVars)
		for i := lo; i < hi; i++ {
			for j := range dense {
				dense[j] = 1
			}
			for _, item := range assignments[i].Items() {
				if int(item.Var) < len(dense) {
					dense[item.Var] = item.Value
				}
			}
			out[i] = p.Eval(dense, out[i])
		}
	})
	return out
}
