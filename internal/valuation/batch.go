package valuation

// EvalBatch evaluates the program under many assignments — the multi-analyst
// workload the paper motivates compression with ("applying valuation may be
// performed by multiple analysts"). Results are returned as one row per
// assignment; the out buffer is reused when it has capacity.
func (p *Program) EvalBatch(assignments []*Assignment, out [][]float64) [][]float64 {
	if cap(out) >= len(assignments) {
		out = out[:len(assignments)]
	} else {
		out = make([][]float64, len(assignments))
	}
	// One dense buffer, re-filled per assignment: rebuilding beats
	// allocating because most scenario assignments are sparse.
	dense := make([]float64, p.numVars)
	for i, a := range assignments {
		for j := range dense {
			dense[j] = 1
		}
		for _, item := range a.Items() {
			if int(item.Var) < len(dense) {
				dense[item.Var] = item.Value
			}
		}
		out[i] = p.Eval(dense, out[i])
	}
	return out
}
