package valuation

import (
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// EvalBatchSource evaluates every polynomial of any SetSource under many
// scenario assignments, streaming shard-at-a-time: each shard is compiled
// to a Program, evaluated (chunking scenarios over up to workers
// goroutines), and released before the next shard loads, so peak memory is
// one shard's program instead of the whole set's. Rows are one result per
// polynomial in set order; because each polynomial evaluates independently
// and shards concatenate in set order, the rows are bit-identical to
// compiling the materialized set and calling EvalBatchN, for every source
// representation and worker count. An in-memory Set presents itself as a
// single shard, so the in-memory streaming path compiles once.
func EvalBatchSource(src polynomial.SetSource, assignments []*Assignment, workers int) ([][]float64, error) {
	out := make([][]float64, len(assignments))
	for i := range out {
		//cobra:hotalloc one result row per assignment; the rows are the return value
		out[i] = make([]float64, 0, src.Len())
	}
	var rows [][]float64
	err := polynomial.ForEachShardN(src, workers, func(_, _ int, s *polynomial.Set) error {
		prog := Compile(s)
		rows = prog.EvalBatchN(assignments, rows, workers)
		for a := range rows {
			out[a] = append(out[a], rows[a]...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvalBatchSharded evaluates a sharded set under many scenario
// assignments; a thin entry point over EvalBatchSource.
func EvalBatchSharded(ss *polynomial.ShardedSet, assignments []*Assignment, workers int) ([][]float64, error) {
	return EvalBatchSource(ss, assignments, workers)
}
