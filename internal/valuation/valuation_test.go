package valuation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

func example(t testing.TB) (*polynomial.Set, *abstraction.Tree) {
	t.Helper()
	names := polynomial.NewNames()
	tree, err := abstraction.FromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Standard", "p2"},
		[]string{"Special", "Y", "y1"},
		[]string{"Special", "Y", "y2"},
		[]string{"Special", "Y", "y3"},
		[]string{"Special", "F", "f1"},
		[]string{"Special", "F", "f2"},
		[]string{"Special", "v"},
		[]string{"Business", "SB", "b1"},
		[]string{"Business", "SB", "b2"},
		[]string{"Business", "e"},
	)
	if err != nil {
		t.Fatal(err)
	}
	set := polynomial.NewSet(names)
	set.Add("10001", polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names))
	set.Add("10002", polynomial.MustParse(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3", names))
	return set, tree
}

func TestAssignmentBasics(t *testing.T) {
	names := polynomial.NewNames()
	x := names.Var("x")
	a := New(names)
	if a.Get(x) != 1 {
		t.Fatal("unassigned variable should default to 1")
	}
	if err := a.Set("x", 0.8); err != nil {
		t.Fatal(err)
	}
	if a.Get(x) != 0.8 || !a.Has(x) || a.Len() != 1 {
		t.Fatal("Set/Get/Has/Len inconsistent")
	}
	if err := a.Set("nope", 2); err == nil {
		t.Fatal("Set of unknown name should error")
	}
	c := a.Clone()
	c.SetVar(x, 2)
	if a.Get(x) != 0.8 {
		t.Fatal("Clone not independent")
	}
	items := a.Items()
	if len(items) != 1 || items[0].Name != "x" || items[0].Value != 0.8 {
		t.Fatalf("Items = %+v", items)
	}
	d := a.Dense(names.Len())
	if d[x] != 0.8 {
		t.Fatalf("Dense = %v", d)
	}
}

func TestAssignmentMustSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSet should panic on unknown name")
		}
	}()
	New(polynomial.NewNames()).MustSet("ghost", 1)
}

func TestScenarioMarchDecrease(t *testing.T) {
	// "what if the ppm of all plans are decreased by 20% on March?"
	// => m3 = 0.8; every other variable stays 1.
	set, _ := example(t)
	a := New(set.Names).MustSet("m3", 0.8)
	got := EvalSet(set, a)
	// Group 10001: m1 coefficients + 0.8 * m3 coefficients.
	m1sum := 208.8 + 127.4 + 75.9 + 42.0
	m3sum := 240.0 + 114.45 + 72.5 + 24.2
	want := m1sum + 0.8*m3sum
	if math.Abs(got[0]-want) > 1e-9 {
		t.Fatalf("group 10001 = %v, want %v", got[0], want)
	}
}

func TestInducedAverage(t *testing.T) {
	set, tree := example(t)
	cut, err := tree.CutOf("Business", "Special", "Standard")
	if err != nil {
		t.Fatal(err)
	}
	base := New(set.Names).
		MustSet("b1", 1.2).MustSet("b2", 1.4).MustSet("e", 1.0)
	ind := Induced(base, cut)
	biz, _ := set.Names.Lookup("Business")
	if got := ind.Get(biz); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("Business induced = %v, want 1.2 (avg of 1.2, 1.4, 1.0)", got)
	}
	// Special leaves are unassigned => average of 1s = 1.
	sp, _ := set.Names.Lookup("Special")
	if got := ind.Get(sp); got != 1 {
		t.Fatalf("Special induced = %v, want 1", got)
	}
}

func TestInducedWeighted(t *testing.T) {
	set, tree := example(t)
	cut, err := tree.CutOf("Business", "Special", "Standard")
	if err != nil {
		t.Fatal(err)
	}
	base := New(set.Names).MustSet("b1", 2).MustSet("b2", 1).MustSet("e", 1)
	w := InducedWeighted(base, set, cut)
	biz, _ := set.Names.Lookup("Business")
	// b1 mass = 77.9+80.5 = 158.4; b2 = 170.35; e = 108.7.
	wantBiz := (158.4*2 + 170.35*1 + 108.7*1) / (158.4 + 170.35 + 108.7)
	if got := w.Get(biz); math.Abs(got-wantBiz) > 1e-9 {
		t.Fatalf("weighted Business = %v, want %v", got, wantBiz)
	}
	// Standard's leaves have zero mass for p2; p1 has mass; average should
	// still be defined.
	st, _ := set.Names.Lookup("Standard")
	if got := w.Get(st); got != 1 {
		t.Fatalf("weighted Standard = %v, want 1", got)
	}
}

func TestAbstractionSoundness(t *testing.T) {
	// If a valuation is constant within each abstraction group, evaluating
	// the compressed provenance under the induced valuation gives exactly
	// the full-provenance result — the paper's soundness guarantee.
	set, tree := example(t)
	for _, cutNames := range [][]string{
		{"Business", "Special", "Standard"},
		{"SB", "e", "F", "Y", "v", "p1", "p2"},
		{"Plans"},
	} {
		cut, err := tree.CutOf(cutNames...)
		if err != nil {
			t.Fatal(err)
		}
		base := New(set.Names)
		// Assign each group's leaves the same value.
		for gi, leaves := range cut.GroupedLeaves() {
			val := 1 + float64(gi)*0.1
			for _, l := range leaves {
				base.SetVar(l, val)
			}
		}
		base.MustSet("m1", 0.9).MustSet("m3", 1.2)
		full := EvalSet(set, base)
		comp := EvalSet(abstraction.Apply(set, cut), Induced(base, cut))
		acc := CompareResults(full, comp)
		if !acc.Exact(1e-9) {
			t.Fatalf("cut %s: not exact: %+v\nfull=%v comp=%v", cut, acc, full, comp)
		}
	}
}

func TestAccuracyNonConstantGroups(t *testing.T) {
	// A valuation that varies within a group is only approximated.
	set, tree := example(t)
	cut, _ := tree.CutOf("Plans")
	base := New(set.Names).MustSet("b1", 2.0) // others stay 1
	full := EvalSet(set, base)
	comp := EvalSet(abstraction.Apply(set, cut), Induced(base, cut))
	acc := CompareResults(full, comp)
	if acc.Exact(1e-9) {
		t.Fatal("expected approximation error for intra-group variation")
	}
	if acc.MaxAbs == 0 || acc.L1 == 0 {
		t.Fatalf("metrics should be positive: %+v", acc)
	}
	if acc.MaxRel < acc.MeanRel {
		t.Fatalf("max < mean: %+v", acc)
	}
}

func TestCompareResultsEdgeCases(t *testing.T) {
	a := CompareResults(nil, nil)
	if a.Groups != 0 || a.MaxAbs != 0 {
		t.Fatalf("empty: %+v", a)
	}
	b := CompareResults([]float64{0}, []float64{1})
	if !math.IsInf(b.MaxRel, 1) {
		t.Fatalf("zero full with nonzero comp should give +Inf rel, got %+v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	CompareResults([]float64{1}, []float64{1, 2})
}

func TestProgramMatchesDirectEval(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	names := polynomial.NewNames()
	for i := 0; i < 8; i++ {
		names.Var(fmt.Sprintf("v%d", i))
	}
	for trial := 0; trial < 50; trial++ {
		set := polynomial.NewSet(names)
		for g := 0; g < 3; g++ {
			var b polynomial.Builder
			for m := 0; m < r.Intn(10); m++ {
				var terms []polynomial.Term
				for k := 0; k < r.Intn(4); k++ {
					terms = append(terms, polynomial.TExp(polynomial.Var(r.Intn(8)), int32(1+r.Intn(3))))
				}
				b.Add(float64(r.Intn(9)-4), terms...)
			}
			set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
		}
		prog := Compile(set)
		if prog.NumPolys() != set.Len() || prog.Size() != set.Size() {
			t.Fatalf("compiled shape mismatch")
		}
		a := New(names)
		for v := 0; v < 8; v++ {
			a.SetVar(polynomial.Var(v), float64(r.Intn(5))-2)
		}
		got := prog.EvalAssignment(a, nil)
		want := EvalSet(set, a)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d poly %d: program %v != direct %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestProgramEvalReuse(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("g", polynomial.MustParse("2*x + 1", names))
	prog := Compile(set)
	buf := make([]float64, 0, 4)
	out1 := prog.Eval([]float64{3}, buf)
	if len(out1) != 1 || out1[0] != 7 {
		t.Fatalf("out1 = %v", out1)
	}
	out2 := prog.Eval([]float64{4}, out1)
	if out2[0] != 9 {
		t.Fatalf("out2 = %v", out2)
	}
}
