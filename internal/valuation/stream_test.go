package valuation

import (
	"fmt"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// TestEvalBatchShardedMatchesInMemory: streaming valuation over a spilled
// sharded set must be bit-identical to compiling the whole set, for every
// worker count.
func TestEvalBatchShardedMatchesInMemory(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	for g := 0; g < 200; g++ {
		var b polynomial.Builder
		for m := 0; m < 1+g%7; m++ {
			b.Add(float64(g+m)+0.25,
				polynomial.T(names.Var(fmt.Sprintf("x%d", (g+m)%23))),
				polynomial.TExp(names.Var(fmt.Sprintf("y%d", m%5)), int32(1+m%3)))
		}
		set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
	}
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{
		MaxResidentMonomials: set.Size() / 5,
		SpillDir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.SpilledShards() == 0 {
		t.Fatal("fixture did not spill")
	}

	assignments := make([]*Assignment, 60)
	for s := range assignments {
		a := New(names)
		a.SetVar(polynomial.Var(s%names.Len()), 0.5+0.01*float64(s))
		a.SetVar(polynomial.Var((s*7)%names.Len()), 1.25)
		assignments[s] = a
	}
	want := Compile(set).EvalBatchN(assignments, nil, 1)

	check := func(label string, got [][]float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows vs %d", label, len(got), len(want))
		}
		for a := range want {
			if len(got[a]) != len(want[a]) {
				t.Fatalf("%s: row %d has %d cells, want %d", label, a, len(got[a]), len(want[a]))
			}
			for j := range want[a] {
				if got[a][j] != want[a][j] {
					t.Fatalf("%s: row %d cell %d: %v != %v", label, a, j, got[a][j], want[a][j])
				}
			}
		}
	}

	packed, err := polynomial.PackSet(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := EvalBatchSharded(ss, assignments, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		check(fmt.Sprintf("sharded workers=%d", w), got)
		// The same unified implementation over the in-memory source.
		got, err = EvalBatchSource(set, assignments, w)
		if err != nil {
			t.Fatalf("set source workers=%d: %v", w, err)
		}
		check(fmt.Sprintf("set source workers=%d", w), got)
		// And over the packed slab-backed source.
		got, err = EvalBatchSource(packed, assignments, w)
		if err != nil {
			t.Fatalf("packed source workers=%d: %v", w, err)
		}
		check(fmt.Sprintf("packed source workers=%d", w), got)
	}
}
