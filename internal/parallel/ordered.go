package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errOrderedPanic marks a slot whose produce call panicked; the consumer
// stops there and Ordered re-raises the panic value after the pool drains.
var errOrderedPanic = errors.New("parallel: produce panicked")

// orderedSlot is one entry of the bounded reorder window.
type orderedSlot[T any] struct {
	val   T
	err   error
	ready chan struct{}
}

// Ordered invokes produce(i) for every i in [0, n) over at most workers
// goroutines and delivers each result to consume(i, v) on the calling
// goroutine, strictly in index order — the fan-out/fan-in primitive behind
// the parallel shard-decode pipeline. The reorder window is bounded by the
// worker count: at most workers results are produced-but-unconsumed at any
// moment, so the resident footprint of a decode pipeline is workers × the
// largest item, never O(n).
//
// Error semantics are deterministic for any worker count: the call returns
// the error of the smallest index whose produce or consume failed, exactly
// as a sequential produce-then-consume loop would. Any failure also stops
// further produce calls from being claimed (in-flight ones complete), so a
// single failed item cancels the rest of the pipeline. A panic in produce
// or consume is re-raised on the calling goroutine after the pool drains.
//
// With workers <= 1 (or n <= 1) everything runs inline on the calling
// goroutine with zero overhead.
func Ordered[T any](workers, n int, produce func(i int) (T, error), consume func(i int, v T) error) error {
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := produce(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	window := workers
	slots := make([]orderedSlot[T], window)
	for i := range slots {
		slots[i].ready = make(chan struct{})
	}
	// Tokens bound the window: a producer claims an index only after
	// acquiring a token, and the consumer releases one per consumed index.
	sem := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		sem <- struct{}{}
	}
	var (
		next   atomic.Int64
		stop   atomic.Bool
		stopCh = make(chan struct{}) // closed by the cleanup below, exactly once
		wg     sync.WaitGroup
		pmu    sync.Mutex
		pval   any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-sem:
				case <-stopCh:
					return
				}
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				s := &slots[i%window]
				func() {
					defer func() {
						if r := recover(); r != nil {
							pmu.Lock()
							if pval == nil {
								pval = r
							}
							pmu.Unlock()
							s.err = errOrderedPanic
						}
						if s.err != nil {
							stop.Store(true)
						}
						close(s.ready)
					}()
					s.val, s.err = produce(i)
				}()
			}
		}()
	}
	defer func() {
		stop.Store(true)
		close(stopCh)
		wg.Wait()
		if pval != nil {
			panic(pval)
		}
	}()
	var zero T
	for c := 0; c < n; c++ {
		s := &slots[c%window]
		<-s.ready
		v, err := s.val, s.err
		// Reset the slot before releasing its token: the producer that
		// claims index c+window acquires the token the release below
		// frees, so it observes the reset (happens-before via sem).
		s.val, s.err = zero, nil
		s.ready = make(chan struct{})
		if err != nil {
			return err
		}
		if err := consume(c, v); err != nil {
			return err
		}
		sem <- struct{}{}
	}
	return nil
}
