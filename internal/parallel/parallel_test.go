package parallel

import (
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-5, 1}, {0, 1}, {1, 1}, {2, 2}, {64, 64},
	} {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned despite panic")
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			covered := make([]int32, n)
			shards := Chunks(workers, n, func(shard, lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("workers=%d n=%d: bad range [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			if n == 0 {
				if shards != 0 {
					t.Errorf("n=0: got %d shards, want 0", shards)
				}
				continue
			}
			want := workers
			if want > n {
				want = n
			}
			if shards != want {
				t.Errorf("workers=%d n=%d: got %d shards, want %d", workers, n, shards, want)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestChunksDeterministicBounds(t *testing.T) {
	// Identical (workers, n) must always yield identical boundaries.
	record := func() [][2]int {
		var out [][2]int
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		res := make([][2]int, 0, 8)
		Chunks(4, 103, func(shard, lo, hi int) {
			<-mu
			res = append(res, [2]int{lo, hi})
			mu <- struct{}{}
		})
		out = append(out, res...)
		return out
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("shard counts differ: %d vs %d", len(a), len(b))
	}
	seen := make(map[[2]int]bool)
	for _, r := range a {
		seen[r] = true
	}
	for _, r := range b {
		if !seen[r] {
			t.Fatalf("range %v not produced in first run", r)
		}
	}
}
