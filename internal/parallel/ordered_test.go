package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderedDelivery checks that results reach consume strictly in index
// order for every worker count, even when produce completes out of order.
func TestOrderedDelivery(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(workers)))
			delays := make([]time.Duration, n)
			for i := range delays {
				delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
			}
			var got []int
			err := Ordered(workers, n,
				func(i int) (int, error) {
					time.Sleep(delays[i])
					return i * i, nil
				},
				func(i, v int) error {
					if v != i*i {
						t.Errorf("consume(%d) got %d, want %d", i, v, i*i)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatalf("Ordered: %v", err)
			}
			if len(got) != n {
				t.Fatalf("consumed %d items, want %d", len(got), n)
			}
			for i, g := range got {
				if g != i {
					t.Fatalf("out-of-order delivery: position %d got index %d", i, g)
				}
			}
		})
	}
}

// TestOrderedWindowBound checks that at most `workers` results are
// produced-but-unconsumed at any moment.
func TestOrderedWindowBound(t *testing.T) {
	const n, workers = 64, 4
	var produced, consumed atomic.Int64
	var maxOutstanding atomic.Int64
	err := Ordered(workers, n,
		func(i int) (int, error) {
			out := produced.Add(1) - consumed.Load()
			for {
				m := maxOutstanding.Load()
				if out <= m || maxOutstanding.CompareAndSwap(m, out) {
					break
				}
			}
			return i, nil
		},
		func(i, v int) error {
			consumed.Add(1)
			return nil
		})
	if err != nil {
		t.Fatalf("Ordered: %v", err)
	}
	// The window invariant is claimed-but-unconsumed <= workers; the
	// counter above can observe one extra in the instant between claim
	// and consume bookkeeping, so allow workers+1.
	if m := maxOutstanding.Load(); m > workers+1 {
		t.Fatalf("outstanding items reached %d, want <= %d", m, workers+1)
	}
}

// TestOrderedProduceError checks the smallest failing index wins
// deterministically and that the failure stops further claims.
func TestOrderedProduceError(t *testing.T) {
	const n, workers = 200, 4
	wantErr := errors.New("boom")
	for trial := 0; trial < 10; trial++ {
		var calls atomic.Int64
		var consumedPast atomic.Bool
		err := Ordered(workers, n,
			func(i int) (int, error) {
				calls.Add(1)
				if i == 7 {
					return 0, fmt.Errorf("shard %d: %w", i, wantErr)
				}
				if i == 31 {
					return 0, errors.New("late error that must never win")
				}
				return i, nil
			},
			func(i, v int) error {
				if i >= 7 {
					consumedPast.Store(true)
				}
				return nil
			})
		if !errors.Is(err, wantErr) {
			t.Fatalf("trial %d: got error %v, want wrapped %v", trial, err, wantErr)
		}
		if consumedPast.Load() {
			t.Fatalf("trial %d: consumed an index at or past the failing one", trial)
		}
		// Cancellation: with the failure near the front, nowhere near all
		// n produce calls may run (claims stop once the error is seen; a
		// few in-flight claims beyond the window are unavoidable).
		if c := calls.Load(); c >= n {
			t.Fatalf("trial %d: produce ran %d times despite early failure", trial, c)
		}
	}
}

// TestOrderedConsumeError checks an error from consume stops the pipeline
// and is returned as-is.
func TestOrderedConsumeError(t *testing.T) {
	wantErr := errors.New("sink full")
	var calls atomic.Int64
	err := Ordered(4, 200,
		func(i int) (int, error) { calls.Add(1); return i, nil },
		func(i, v int) error {
			if i == 5 {
				return wantErr
			}
			return nil
		})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got error %v, want %v", err, wantErr)
	}
	if c := calls.Load(); c >= 200 {
		t.Fatalf("produce ran %d times despite consume failure at index 5", c)
	}
}

// TestOrderedPanic checks a produce panic is re-raised on the caller after
// the pool drains, for parity with ForEach.
func TestOrderedPanic(t *testing.T) {
	for _, who := range []string{"produce", "consume"} {
		t.Run(who, func(t *testing.T) {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("panic in %s was not re-raised", who)
				}
			}()
			_ = Ordered(4, 50,
				func(i int) (int, error) {
					if who == "produce" && i == 9 {
						panic("kaboom")
					}
					return i, nil
				},
				func(i, v int) error {
					if who == "consume" && i == 9 {
						panic("kaboom")
					}
					return nil
				})
		})
	}
}

// TestOrderedZeroAndTiny covers the degenerate sizes.
func TestOrderedZeroAndTiny(t *testing.T) {
	if err := Ordered(8, 0, func(i int) (int, error) { return 0, nil }, func(i, v int) error { return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	var got []int
	err := Ordered(8, 1,
		func(i int) (int, error) { return 42, nil },
		func(i, v int) error { got = append(got, v); return nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("n=1: got %v err %v", got, err)
	}
}

// TestOrderedConcurrentCalls runs several Ordered pipelines at once under
// the race detector.
func TestOrderedConcurrentCalls(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sum := 0
			err := Ordered(3, 64,
				func(i int) (int, error) { return i + g, nil },
				func(i, v int) error { sum += v; return nil })
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
}
