// Package parallel provides the small worker-pool primitives shared by the
// compression and valuation hot paths. Everything here is designed for
// determinism: callers shard work into index-addressed slots (ForEach) or
// contiguous ranges whose boundaries depend only on the input size (Chunks),
// so merged results are reproducible for any worker count.
package parallel

import (
	"sync"
	"sync/atomic"
)

// Normalize clamps a Workers knob to an effective goroutine count: any value
// below one means "one worker", i.e. run sequentially on the calling
// goroutine. Values above one are returned unchanged — the pool helpers cap
// them at the amount of available work.
func Normalize(workers int) int {
	if workers < 1 {
		return 1
	}
	return workers
}

// ForEach invokes fn(i) exactly once for every i in [0, n), distributing
// iterations over at most workers goroutines, and blocks until all calls
// return. With workers <= 1 (or n <= 1) it runs inline on the caller's
// goroutine with zero overhead. Iterations are claimed dynamically (an
// atomic cursor), so uneven per-item costs balance across the pool; fn must
// therefore not depend on execution order, only on its index. A panic in any
// fn is re-raised on the calling goroutine after the pool drains.
func ForEach(workers, n int, fn func(i int)) {
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		pmu  sync.Mutex
		pval any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
					// Drain remaining work so sibling workers exit promptly.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}

// RowErr tags an error with the input-row index a sequential pass would
// have failed at. Sharded passes record one RowErr per shard (each shard
// stops at its first failing row) and reduce with FirstRowErr, so the
// reported error is deterministic for every worker count.
type RowErr struct {
	Err error
	Row int
}

// FirstRowErr returns the recorded error with the smallest row index (the
// zero RowErr when none failed).
func FirstRowErr(errs []RowErr) RowErr {
	best := RowErr{}
	for _, e := range errs {
		if e.Err == nil {
			continue
		}
		if best.Err == nil || e.Row < best.Row {
			best = e
		}
	}
	return best
}

// Chunks splits [0, n) into at most workers contiguous near-equal ranges and
// invokes fn(shard, lo, hi) for each, concurrently when workers > 1. It
// returns the number of shards. The boundaries depend only on (workers, n),
// so per-shard partial results indexed by shard can be merged in shard order
// for deterministic output given a fixed worker count; results that must be
// identical across different worker counts additionally need fn's merged
// contribution to be independent of the boundaries (e.g. set unions or
// per-index writes). With workers <= 1 the single chunk runs inline.
func Chunks(workers, n int, fn func(shard, lo, hi int)) int {
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return 0
	}
	if workers <= 1 {
		fn(0, 0, n)
		return 1
	}
	// Spread the remainder over the first n%workers shards.
	base, rem := n/workers, n%workers
	bounds := make([]int, workers+1)
	for s := 0; s < workers; s++ {
		sz := base
		if s < rem {
			sz++
		}
		bounds[s+1] = bounds[s] + sz
	}
	ForEach(workers, workers, func(s int) {
		fn(s, bounds[s], bounds[s+1])
	})
	return workers
}
