package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation as CSV: a header of column names followed by
// one record per row. Symbolic cells are not representable in CSV and cause
// an error; NULLs are written as empty fields.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, rel.Schema.Len())
	for i, c := range rel.Schema.Cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, rel.Schema.Len())
	for ri, row := range rel.Rows {
		for i, v := range row.Values {
			switch v.Kind {
			case KindNull:
				record[i] = ""
			case KindPoly:
				return fmt.Errorf("relation: row %d column %q is symbolic; CSV cannot represent it", ri, rel.Schema.Cols[i].Name)
			default:
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation from CSV using the schema's declared kinds to
// parse each field. The first record must be a header matching the schema's
// column names in order. Empty fields become NULL for non-string columns
// and empty strings for string columns.
func ReadCSV(r io.Reader, name string, schema *Schema) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	for i, c := range schema.Cols {
		if header[i] != c.Name {
			return nil, fmt.Errorf("relation: CSV header %q at position %d, want %q", header[i], i, c.Name)
		}
	}
	rel := NewRelation(name, schema)
	line := 1
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV: %w", err)
		}
		line++
		vals := make([]Value, schema.Len())
		for i, field := range record {
			v, err := parseCSVField(field, schema.Cols[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: line %d column %q: %w", line, schema.Cols[i].Name, err)
			}
			vals[i] = v
		}
		rel.Append(vals...)
	}
}

func parseCSVField(field string, kind Kind) (Value, error) {
	if field == "" && kind != KindString {
		return Null(), nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad integer %q", field)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad number %q", field)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return Value{}, fmt.Errorf("bad boolean %q", field)
		}
		return Bool(b), nil
	case KindString, KindNull:
		return Str(field), nil
	default:
		return Value{}, fmt.Errorf("cannot parse into kind %s", kind)
	}
}
