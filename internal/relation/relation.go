package relation

import (
	"fmt"
	"strings"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// Column describes one attribute: an optional table qualifier, a name, and a
// declared kind (KindNull means "untyped/any", used for computed columns).
type Column struct {
	Table string
	Name  string
	Kind  Kind
}

// Qualified returns "table.name" or just "name" when unqualified.
func (c Column) Qualified() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns with name-based lookup.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Cols: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Index resolves a (possibly qualified) column reference, matching names
// case-insensitively as SQL does. Unqualified names must be unambiguous.
func (s *Schema) Index(ref string) (int, error) {
	table, name := "", ref
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		table, name = ref[:i], ref[i+1:]
	}
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("relation: ambiguous column %q", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("relation: unknown column %q", ref)
	}
	return found, nil
}

// WithQualifier returns a copy of the schema with every column's table
// qualifier replaced (used when a table is aliased in FROM).
func (s *Schema) WithQualifier(table string) *Schema {
	out := &Schema{Cols: make([]Column, len(s.Cols))}
	for i, c := range s.Cols {
		c.Table = table
		out.Cols[i] = c
	}
	return out
}

// Concat returns the schema of a join: s's columns followed by o's.
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// Tuple is a row: values plus a provenance annotation in N[X]. A fresh
// un-instrumented tuple has annotation 1 (present once).
type Tuple struct {
	Values []Value
	Ann    polynomial.Polynomial
}

// NewTuple builds a tuple with annotation 1 (the shared identity
// polynomial — no allocation per row).
func NewTuple(vals ...Value) Tuple {
	return Tuple{Values: vals, Ann: polynomial.One()}
}

// Clone deep-copies the tuple (values share immutable polynomials).
func (t Tuple) Clone() Tuple {
	out := Tuple{Values: make([]Value, len(t.Values)), Ann: t.Ann}
	copy(out.Values, t.Values)
	return out
}

// Relation is an in-memory table.
type Relation struct {
	Name   string
	Schema *Schema
	Rows   []Tuple
}

// NewRelation creates an empty relation.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a row built from vals (annotation 1). It panics if the arity
// is wrong — rows are constructed by generators, not user input.
func (r *Relation) Append(vals ...Value) {
	if len(vals) != r.Schema.Len() {
		panic(fmt.Sprintf("relation %s: arity %d != schema %d", r.Name, len(vals), r.Schema.Len()))
	}
	r.Rows = append(r.Rows, NewTuple(vals...))
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone deep-copies the relation (so instrumentation does not mutate the
// base data). All row values are copied into one flat slab — two
// allocations for the whole relation instead of one per row.
func (r *Relation) Clone() *Relation {
	out := &Relation{Name: r.Name, Schema: r.Schema, Rows: make([]Tuple, len(r.Rows))}
	total := 0
	for i := range r.Rows {
		total += len(r.Rows[i].Values)
	}
	vals := make([]Value, 0, total)
	for i, t := range r.Rows {
		off := len(vals)
		vals = append(vals, t.Values...)
		out.Rows[i] = Tuple{Values: vals[off:len(vals):len(vals)], Ann: t.Ann}
	}
	return out
}

// String renders up to 20 rows for debugging.
func (r *Relation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(", r.Name)
	for i, c := range r.Schema.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Qualified())
	}
	fmt.Fprintf(&sb, ") %d rows\n", len(r.Rows))
	for i, t := range r.Rows {
		if i == 20 {
			sb.WriteString("  ...\n")
			break
		}
		sb.WriteString("  ")
		for j, v := range t.Values {
			if j > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
