// Package relation provides the relational substrate: typed values
// (including symbolic polynomial-valued numerics), schemas with qualified
// column names, tuples carrying provenance annotations, and in-memory
// relations.
package relation

import (
	"fmt"
	"strconv"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// Kind enumerates value types.
type Kind uint8

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	// KindPoly is a symbolic numeric value: a provenance polynomial. Cells
	// become KindPoly when instrumented with provenance variables (e.g. a
	// price 0.4 parameterized as 0.4·p1·m1).
	KindPoly
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindPoly:
		return "poly"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
	P    polynomial.Polynomial
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int wraps an int64.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Poly wraps a symbolic numeric value.
func Poly(p polynomial.Polynomial) Value { return Value{Kind: KindPoly, P: p} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool {
	return v.Kind == KindInt || v.Kind == KindFloat || v.Kind == KindPoly
}

// AsFloat converts a concrete numeric value to float64. Symbolic values
// convert only if constant.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindPoly:
		if c, ok := v.P.IsConstant(); ok {
			return c, true
		}
	}
	return 0, false
}

// AsPoly lifts a numeric value into the polynomial semiring.
func (v Value) AsPoly() (polynomial.Polynomial, bool) {
	switch v.Kind {
	case KindInt:
		return polynomial.Const(float64(v.I)), true
	case KindFloat:
		return polynomial.Const(v.F), true
	case KindPoly:
		return v.P, true
	}
	return polynomial.Polynomial{}, false
}

// Compare orders two values: -1, 0, +1. NULL compares less than everything
// and equal to NULL (simplified three-valued logic: engine filters treat
// NULL comparisons as false upstream). Numeric kinds compare numerically;
// symbolic values compare only when constant.
func (v Value) Compare(o Value) (int, error) {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == o.Kind:
			return 0, nil
		case v.Kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, aok := v.AsFloat()
		b, bok := o.AsFloat()
		if !aok || !bok {
			return 0, fmt.Errorf("relation: cannot compare symbolic value %s with %s", v, o)
		}
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Kind != o.Kind {
		return 0, fmt.Errorf("relation: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KindString:
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		vi, oi := 0, 0
		if v.B {
			vi = 1
		}
		if o.B {
			oi = 1
		}
		return vi - oi, nil
	default:
		return 0, fmt.Errorf("relation: cannot compare %s values", v.Kind)
	}
}

// Equal reports comparability and equality.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindPoly || o.Kind == KindPoly {
		a, aok := v.AsPoly()
		b, bok := o.AsPoly()
		return aok && bok && polynomial.Equal(a, b)
	}
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// Key appends a canonical byte encoding of the value for hashing (group-by
// and join keys). Symbolic values are not hashable and panic — the planner
// never hashes them.
func (v Value) Key(buf []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(buf, 0)
	case KindInt:
		buf = append(buf, 1)
		return strconv.AppendInt(buf, v.I, 10)
	case KindFloat:
		buf = append(buf, 2)
		return strconv.AppendFloat(buf, v.F, 'g', -1, 64)
	case KindString:
		buf = append(buf, 3)
		buf = append(buf, v.S...)
		return append(buf, 0)
	case KindBool:
		if v.B {
			return append(buf, 4, 1)
		}
		return append(buf, 4, 0)
	default:
		panic("relation: symbolic values cannot be used as hash keys")
	}
}

// String renders the value for display. Symbolic values render with
// placeholder variable ids (use Format with a namespace for names).
func (v Value) String() string {
	if v.Kind == KindString {
		return v.S
	}
	return string(v.AppendString(nil))
}

// AppendString appends String's rendering to buf — the allocation-free
// form used by hot key-rendering loops (capture group keys, lineage
// keys). The bytes appended are exactly String's output.
func (v Value) AppendString(buf []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(buf, "NULL"...)
	case KindInt:
		return strconv.AppendInt(buf, v.I, 10)
	case KindFloat:
		return strconv.AppendFloat(buf, v.F, 'g', -1, 64)
	case KindString:
		return append(buf, v.S...)
	case KindBool:
		return strconv.AppendBool(buf, v.B)
	case KindPoly:
		buf = append(buf, "<poly:"...)
		buf = strconv.AppendInt(buf, int64(v.P.NumMonomials()), 10)
		return append(buf, " monomials>"...)
	default:
		return append(buf, '?')
	}
}

// Format renders the value, printing symbolic values with variable names.
func (v Value) Format(names *polynomial.Names) string {
	if v.Kind == KindPoly {
		return v.P.String(names)
	}
	return v.String()
}
