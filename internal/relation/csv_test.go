package relation

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

func csvSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindFloat},
		Column{Name: "active", Kind: KindBool},
	)
}

func TestCSVRoundTrip(t *testing.T) {
	rel := NewRelation("t", csvSchema())
	rel.Append(Int(1), Str("alice"), Float(3.5), Bool(true))
	rel.Append(Int(2), Str("bob, jr."), Float(-1), Bool(false))
	rel.Append(Null(), Str(""), Null(), Null())

	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "t", csvSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() {
		t.Fatalf("rows = %d, want %d", back.Len(), rel.Len())
	}
	for i := range rel.Rows {
		for j := range rel.Rows[i].Values {
			a, b := rel.Rows[i].Values[j], back.Rows[i].Values[j]
			if !a.Equal(b) && !(a.IsNull() && b.IsNull()) {
				t.Fatalf("row %d col %d: %s vs %s", i, j, a, b)
			}
		}
	}
}

func TestCSVRejectsSymbolic(t *testing.T) {
	names := polynomial.NewNames()
	rel := NewRelation("t", NewSchema(Column{Name: "p", Kind: KindPoly}))
	rel.Append(Poly(polynomial.MustParse("x", names)))
	if err := WriteCSV(&bytes.Buffer{}, rel); err == nil {
		t.Fatal("symbolic cell should be rejected")
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := csvSchema()
	cases := []string{
		"",                                      // no header
		"wrong,name,score,active\n",             // header mismatch
		"id,name,score,active\nx,a,1,true\n",    // bad int
		"id,name,score,active\n1,a,nope,true\n", // bad float
		"id,name,score,active\n1,a,1,maybe\n",   // bad bool
		"id,name,score,active\n1,a,1\n",         // wrong arity
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "t", s); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", in)
		}
	}
}

func TestReadCSVNullHandling(t *testing.T) {
	in := "id,name,score,active\n,x,,\n"
	rel, err := ReadCSV(strings.NewReader(in), "t", csvSchema())
	if err != nil {
		t.Fatal(err)
	}
	row := rel.Rows[0]
	if !row.Values[0].IsNull() || row.Values[1].S != "x" || !row.Values[2].IsNull() || !row.Values[3].IsNull() {
		t.Fatalf("row = %v", row.Values)
	}
}
