package relation

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

func TestValueConstructorsAndPredicates(t *testing.T) {
	if !Null().IsNull() || Int(1).IsNull() {
		t.Fatal("IsNull broken")
	}
	for _, v := range []Value{Int(3), Float(2.5)} {
		if !v.IsNumeric() {
			t.Fatalf("%s should be numeric", v)
		}
	}
	for _, v := range []Value{Str("x"), Bool(true), Null()} {
		if v.IsNumeric() {
			t.Fatalf("%s should not be numeric", v)
		}
	}
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Fatal("Int AsFloat")
	}
	names := polynomial.NewNames()
	sym := Poly(polynomial.MustParse("2*x", names))
	if sym.IsNull() || !sym.IsNumeric() {
		t.Fatal("poly kind predicates")
	}
	if _, ok := sym.AsFloat(); ok {
		t.Fatal("non-constant poly should not convert to float")
	}
	if f, ok := Poly(polynomial.Const(4)).AsFloat(); !ok || f != 4 {
		t.Fatal("constant poly should convert")
	}
	if p, ok := Int(3).AsPoly(); !ok {
		t.Fatal("int lifts to poly")
	} else if c, _ := p.IsConstant(); c != 3 {
		t.Fatal("lift value wrong")
	}
	if _, ok := Str("s").AsPoly(); ok {
		t.Fatal("string must not lift to poly")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Float(2), 0},
		{Float(3.5), Int(3), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(), Int(5), -1},
		{Int(5), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, tc := range cases {
		got, err := tc.a.Compare(tc.b)
		if err != nil || got != tc.want {
			t.Errorf("Compare(%s, %s) = %d, %v; want %d", tc.a, tc.b, got, err, tc.want)
		}
	}
	if _, err := Str("a").Compare(Int(1)); err == nil {
		t.Error("string vs int should error")
	}
	names := polynomial.NewNames()
	sym := Poly(polynomial.MustParse("x", names))
	if _, err := sym.Compare(Int(1)); err == nil {
		t.Error("symbolic compare should error")
	}
	if c, err := Poly(polynomial.Const(2)).Compare(Int(2)); err != nil || c != 0 {
		t.Error("constant poly compares numerically")
	}
}

func TestValueEqualAndKey(t *testing.T) {
	if !Int(2).Equal(Float(2)) {
		t.Fatal("2 == 2.0")
	}
	names := polynomial.NewNames()
	p := polynomial.MustParse("x+1", names)
	if !Poly(p).Equal(Poly(p.Clone())) {
		t.Fatal("equal polys")
	}
	if Poly(p).Equal(Str("x")) {
		t.Fatal("poly != string")
	}
	// Keys distinguish kinds and values, including the string/NUL edge.
	keys := map[string]bool{}
	for _, v := range []Value{Int(1), Float(1), Str("1"), Bool(true), Null(), Str("a"), Str("ab")} {
		k := string(v.Key(nil))
		if keys[k] {
			t.Fatalf("key collision for %s", v)
		}
		keys[k] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Key on symbolic value should panic")
		}
	}()
	_ = Poly(p).Key(nil)
}

func TestSchemaIndex(t *testing.T) {
	s := NewSchema(
		Column{Table: "c", Name: "id", Kind: KindInt},
		Column{Table: "c", Name: "zip", Kind: KindString},
		Column{Table: "o", Name: "id", Kind: KindInt},
	)
	if i, err := s.Index("zip"); err != nil || i != 1 {
		t.Fatalf("Index(zip) = %d, %v", i, err)
	}
	if _, err := s.Index("id"); err == nil {
		t.Fatal("unqualified ambiguous lookup should error")
	}
	if i, err := s.Index("o.id"); err != nil || i != 2 {
		t.Fatalf("Index(o.id) = %d, %v", i, err)
	}
	if _, err := s.Index("nope"); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := s.Index("x.zip"); err == nil {
		t.Fatal("wrong qualifier should error")
	}
}

func TestSchemaQualifierAndConcat(t *testing.T) {
	s := NewSchema(Column{Name: "a"}, Column{Name: "b"})
	q := s.WithQualifier("t")
	if q.Cols[0].Table != "t" || s.Cols[0].Table != "" {
		t.Fatal("WithQualifier must copy")
	}
	j := q.Concat(NewSchema(Column{Table: "u", Name: "c"}))
	if j.Len() != 3 || j.Cols[2].Qualified() != "u.c" {
		t.Fatalf("Concat: %+v", j.Cols)
	}
}

func TestRelationAppendCloneString(t *testing.T) {
	s := NewSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "name", Kind: KindString})
	r := NewRelation("t", s)
	r.Append(Int(1), Str("a"))
	r.Append(Int(2), Str("b"))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	c := r.Clone()
	c.Rows[0].Values[0] = Int(99)
	if r.Rows[0].Values[0].I == 99 {
		t.Fatal("Clone shares row storage")
	}
	if r.Rows[0].Ann.NumMonomials() != 1 {
		t.Fatal("fresh tuples must have annotation 1")
	}
	if got := r.String(); got == "" {
		t.Fatal("String empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch should panic")
		}
	}()
	r.Append(Int(3))
}
