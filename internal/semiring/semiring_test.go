package semiring

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// checkLaws verifies the commutative-semiring axioms on sampled elements.
func checkLaws[T any](t *testing.T, name string, s Semiring[T], sample func(r *rand.Rand) T) {
	t.Helper()
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		a, b, c := sample(r), sample(r), sample(r)
		if !s.Equal(s.Add(a, b), s.Add(b, a)) {
			t.Fatalf("%s: + not commutative", name)
		}
		if !s.Equal(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			t.Fatalf("%s: + not associative", name)
		}
		if !s.Equal(s.Mul(a, b), s.Mul(b, a)) {
			t.Fatalf("%s: · not commutative", name)
		}
		if !s.Equal(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			t.Fatalf("%s: · not associative", name)
		}
		if !s.Equal(s.Add(a, s.Zero()), a) {
			t.Fatalf("%s: 0 not additive identity", name)
		}
		if !s.Equal(s.Mul(a, s.One()), a) {
			t.Fatalf("%s: 1 not multiplicative identity", name)
		}
		if !s.Equal(s.Mul(a, s.Zero()), s.Zero()) {
			t.Fatalf("%s: 0 not annihilating", name)
		}
		if !s.Equal(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c))) {
			t.Fatalf("%s: · does not distribute over +", name)
		}
	}
}

func TestNaturalLaws(t *testing.T) {
	checkLaws[int64](t, "Natural", Natural{}, func(r *rand.Rand) int64 { return int64(r.Intn(20)) })
}

func TestBooleanLaws(t *testing.T) {
	checkLaws[bool](t, "Boolean", Boolean{}, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
}

func TestTropicalLaws(t *testing.T) {
	checkLaws[float64](t, "Tropical", Tropical{}, func(r *rand.Rand) float64 {
		if r.Intn(8) == 0 {
			return math.Inf(1)
		}
		return float64(r.Intn(50))
	})
}

func TestViterbiLaws(t *testing.T) {
	// Dyadic rationals keep float multiplication exactly associative.
	checkLaws[float64](t, "Viterbi", Viterbi{}, func(r *rand.Rand) float64 {
		return float64(r.Intn(5)) / 4
	})
}

func TestRealLaws(t *testing.T) {
	checkLaws[float64](t, "Real", Real{}, func(r *rand.Rand) float64 { return float64(r.Intn(9) - 4) })
}

func TestPolySemiringLaws(t *testing.T) {
	names := polynomial.NewNames()
	for i := 0; i < 4; i++ {
		names.Var(string(rune('a' + i)))
	}
	checkLaws[polynomial.Polynomial](t, "PolySemiring", PolySemiring{}, func(r *rand.Rand) polynomial.Polynomial {
		var b polynomial.Builder
		for m := 0; m < r.Intn(4); m++ {
			var terms []polynomial.Term
			for k := 0; k < r.Intn(3); k++ {
				terms = append(terms, polynomial.T(polynomial.Var(r.Intn(4))))
			}
			b.Add(float64(r.Intn(5)), terms...)
		}
		return b.Polynomial()
	})
}

func TestEvalHomomorphismIntoReal(t *testing.T) {
	// Eval into Real must agree with Polynomial.Eval.
	names := polynomial.NewNames()
	p := polynomial.MustParse("2*x^2*y + 3*y + 5", names)
	x, _ := names.Lookup("x")
	vals := func(v polynomial.Var) float64 {
		if v == x {
			return 3
		}
		return 2
	}
	got := Eval[float64](Real{}, p, vals, CoefReal)
	want := p.Eval(vals)
	if got != want {
		t.Fatalf("Eval into Real = %v, want %v", got, want)
	}
}

func TestEvalIntoBoolean(t *testing.T) {
	// Lineage: the result is derivable iff some monomial has all its
	// variables "present".
	names := polynomial.NewNames()
	p := polynomial.MustParse("x*y + z", names)
	x, _ := names.Lookup("x")
	z, _ := names.Lookup("z")
	onlyX := func(v polynomial.Var) bool { return v == x }
	if Eval[bool](Boolean{}, p, onlyX, CoefBool) {
		t.Fatal("x alone should not derive x*y + z")
	}
	withZ := func(v polynomial.Var) bool { return v == x || v == z }
	if !Eval[bool](Boolean{}, p, withZ, CoefBool) {
		t.Fatal("z present should derive x*y + z")
	}
}

func TestEvalIntoTropical(t *testing.T) {
	// Cheapest derivation: x*y costs cost(x)+cost(y); alternative z costs
	// cost(z); the result is the min.
	names := polynomial.NewNames()
	p := polynomial.MustParse("x*y + z", names)
	x, _ := names.Lookup("x")
	y, _ := names.Lookup("y")
	cost := func(v polynomial.Var) float64 {
		switch v {
		case x:
			return 2
		case y:
			return 3
		default:
			return 7
		}
	}
	got := Eval[float64](Tropical{}, p, cost, CoefTropical)
	if got != 5 {
		t.Fatalf("tropical eval = %v, want 5", got)
	}
}

func TestEvalHomomorphismProperty(t *testing.T) {
	// Eval(p+q) = Eval(p)+Eval(q), Eval(p*q) = Eval(p)*Eval(q) in Boolean.
	names := polynomial.NewNames()
	for i := 0; i < 4; i++ {
		names.Var(string(rune('a' + i)))
	}
	r := rand.New(rand.NewSource(37))
	s := Boolean{}
	randPoly := func() polynomial.Polynomial {
		var b polynomial.Builder
		for m := 0; m < 1+r.Intn(4); m++ {
			var terms []polynomial.Term
			for k := 0; k < r.Intn(3); k++ {
				terms = append(terms, polynomial.T(polynomial.Var(r.Intn(4))))
			}
			b.Add(float64(1+r.Intn(3)), terms...)
		}
		return b.Polynomial()
	}
	for i := 0; i < 200; i++ {
		p, q := randPoly(), randPoly()
		present := [4]bool{r.Intn(2) == 0, r.Intn(2) == 0, r.Intn(2) == 0, r.Intn(2) == 0}
		val := func(v polynomial.Var) bool { return present[v] }
		ep := Eval[bool](s, p, val, CoefBool)
		eq := Eval[bool](s, q, val, CoefBool)
		if got := Eval[bool](s, polynomial.Add(p, q), val, CoefBool); got != s.Add(ep, eq) {
			t.Fatalf("hom(+) broken")
		}
		if got := Eval[bool](s, polynomial.Mul(p, q), val, CoefBool); got != s.Mul(ep, eq) {
			t.Fatalf("hom(·) broken")
		}
	}
}
