// Package semiring implements the commutative-semiring framework that
// underlies provenance polynomials (Green, Karvounarakis, Tannen, PODS 2007).
// Provenance polynomials N[X] form the *free* commutative semiring over the
// variable set X: any valuation of variables into another semiring K extends
// uniquely to a homomorphism N[X] → K. Eval implements that homomorphism,
// which is exactly why applying valuations to provenance commutes with query
// evaluation — the correctness guarantee hypothetical reasoning relies on.
package semiring

import (
	"math"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// Semiring is a commutative semiring (K, +, ·, 0, 1).
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
	Equal(a, b T) bool
}

// Natural is (ℕ, +, ·, 0, 1) over int64 — bag semantics / multiplicity.
type Natural struct{}

func (Natural) Zero() int64           { return 0 }
func (Natural) One() int64            { return 1 }
func (Natural) Add(a, b int64) int64  { return a + b }
func (Natural) Mul(a, b int64) int64  { return a * b }
func (Natural) Equal(a, b int64) bool { return a == b }

// Boolean is ({false,true}, ∨, ∧, false, true) — set semantics /
// possibility.
type Boolean struct{}

func (Boolean) Zero() bool           { return false }
func (Boolean) One() bool            { return true }
func (Boolean) Add(a, b bool) bool   { return a || b }
func (Boolean) Mul(a, b bool) bool   { return a && b }
func (Boolean) Equal(a, b bool) bool { return a == b }

// Tropical is (ℝ∪{∞}, min, +, ∞, 0) — minimal-cost derivation.
type Tropical struct{}

func (Tropical) Zero() float64 { return math.Inf(1) }
func (Tropical) One() float64  { return 0 }
func (Tropical) Add(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func (Tropical) Mul(a, b float64) float64 { return a + b }
func (Tropical) Equal(a, b float64) bool  { return a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) }

// Viterbi is ([0,1], max, ·, 0, 1) — most-likely derivation.
type Viterbi struct{}

func (Viterbi) Zero() float64 { return 0 }
func (Viterbi) One() float64  { return 1 }
func (Viterbi) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (Viterbi) Mul(a, b float64) float64 { return a * b }
func (Viterbi) Equal(a, b float64) bool  { return a == b }

// Real is (ℝ, +, ·, 0, 1) — the semiring provenance values are evaluated in
// when computing concrete (hypothetical) query answers.
type Real struct{}

func (Real) Zero() float64            { return 0 }
func (Real) One() float64             { return 1 }
func (Real) Add(a, b float64) float64 { return a + b }
func (Real) Mul(a, b float64) float64 { return a * b }
func (Real) Equal(a, b float64) bool  { return a == b }

// PolySemiring is N[X] itself, realized over canonical Polynomials. It is
// the annotation domain used by the provenance-aware engine; all other
// semirings are reachable from it through Eval.
type PolySemiring struct{}

func (PolySemiring) Zero() polynomial.Polynomial { return polynomial.Zero() }
func (PolySemiring) One() polynomial.Polynomial  { return polynomial.Const(1) }
func (PolySemiring) Add(a, b polynomial.Polynomial) polynomial.Polynomial {
	return polynomial.Add(a, b)
}
func (PolySemiring) Mul(a, b polynomial.Polynomial) polynomial.Polynomial {
	return polynomial.Mul(a, b)
}
func (PolySemiring) Equal(a, b polynomial.Polynomial) bool { return polynomial.Equal(a, b) }

// Eval applies the unique homomorphism N[X] → K determined by the variable
// valuation val and the coefficient embedding coef (how a rational
// multiplicity embeds into K; for ℕ-like semirings use CoefNat).
func Eval[T any](s Semiring[T], p polynomial.Polynomial, val func(polynomial.Var) T, coef func(float64) T) T {
	acc := s.Zero()
	for _, m := range p.Mons {
		term := coef(m.Coef)
		for _, t := range m.Terms {
			x := val(t.Var)
			for e := int32(0); e < t.Exp; e++ {
				term = s.Mul(term, x)
			}
		}
		acc = s.Add(acc, term)
	}
	return acc
}

// CoefBool embeds a coefficient into Boolean: any nonzero multiplicity is
// "present".
func CoefBool(c float64) bool { return c != 0 }

// CoefReal embeds a coefficient into Real (or Viterbi) as itself.
func CoefReal(c float64) float64 { return c }

// CoefTropical embeds a multiplicity into Tropical: a nonzero multiplicity
// contributes cost 0 (the One), zero contributes ∞ (the Zero).
func CoefTropical(c float64) float64 {
	if c != 0 {
		return 0
	}
	return math.Inf(1)
}
