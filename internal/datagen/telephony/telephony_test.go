package telephony

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/sql"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Customers != 10_000 || c.Months != 12 {
		t.Fatalf("defaults: %+v", c)
	}
	// Paper scale: one million customers -> 1,055 zips.
	c = Config{Customers: 1_000_000}.withDefaults()
	if c.Zips != 1055 {
		t.Fatalf("zips at 1M = %d, want 1055", c.Zips)
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	cfg := Config{Customers: 200, Zips: 3, Months: 4}
	cat1 := Generate(cfg)
	cat2 := Generate(cfg)
	if cat1["Cust"].Len() != 200 || cat1["Calls"].Len() != 800 || cat1["Plans"].Len() != 44 {
		t.Fatalf("sizes: cust=%d calls=%d plans=%d", cat1["Cust"].Len(), cat1["Calls"].Len(), cat1["Plans"].Len())
	}
	for i := range cat1["Calls"].Rows {
		a, b := cat1["Calls"].Rows[i], cat2["Calls"].Rows[i]
		if a.Values[2].F != b.Values[2].F {
			t.Fatal("generator not deterministic")
		}
	}
	// Every zip covers every plan (needed for the Section-4 size formula).
	seen := map[string]map[string]bool{}
	for _, row := range cat1["Cust"].Rows {
		z, p := row.Values[2].S, row.Values[1].S
		if seen[z] == nil {
			seen[z] = map[string]bool{}
		}
		seen[z][p] = true
	}
	for z, plans := range seen {
		if len(plans) != len(PlanNames) {
			t.Fatalf("zip %s covers %d plans", z, len(plans))
		}
	}
}

func TestDurationsAndPricesValid(t *testing.T) {
	for i := 0; i < 100; i++ {
		for m := 1; m <= 12; m++ {
			if d := duration(i, m); d < 60 || d > 1200 {
				t.Fatalf("duration(%d,%d) = %d out of range", i, m, d)
			}
		}
	}
	for pi := range PlanNames {
		for m := 1; m <= 12; m++ {
			if p := price(pi, m); p <= 0 {
				t.Fatalf("price(%d,%d) = %v", pi, m, p)
			}
		}
	}
}

func TestDirectProvenanceMatchesEnginePath(t *testing.T) {
	// The integration guarantee behind E3: the direct construction equals
	// instrumenting the database and running the query through the engine.
	cfg := Config{Customers: 120, Zips: 3, Months: 4}
	names := polynomial.NewNames()
	direct := DirectProvenance(cfg, names)

	inst, err := InstrumentPrices(Generate(cfg), names)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sql.Run(RevenueQuery, inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != direct.Len() {
		t.Fatalf("groups: engine %d vs direct %d", out.Len(), direct.Len())
	}
	for _, row := range out.Rows {
		zip := row.Values[0].S
		want, ok := direct.Poly(zip)
		if !ok {
			t.Fatalf("zip %s missing from direct set", zip)
		}
		if !polynomial.AlmostEqual(row.Values[1].P, want, 1e-9) {
			t.Fatalf("zip %s:\nengine: %s\ndirect: %s", zip,
				row.Values[1].P.String(names), want.String(names))
		}
	}
}

func TestDirectProvenanceSizeFormula(t *testing.T) {
	// Size = zips × plans × months when every combination is populated.
	cfg := Config{Customers: 500, Zips: 4, Months: 6}
	names := polynomial.NewNames()
	set := DirectProvenance(cfg, names)
	if got, want := set.Size(), 4*len(PlanNames)*6; got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	if set.NumVars() != len(PlanNames)+6 {
		t.Fatalf("vars = %d", set.NumVars())
	}
}

func TestPlansTreeMatchesFigure2(t *testing.T) {
	names := polynomial.NewNames()
	tree := PlansTree(names)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves()) != 11 || tree.Len() != 18 {
		t.Fatalf("leaves=%d nodes=%d", len(tree.Leaves()), tree.Len())
	}
	for _, cut := range [][]string{
		{"Business", "Special", "Standard"},
		{"SB", "e", "f1", "f2", "Y", "v", "Standard"},
		{"b1", "b2", "e", "Special", "Standard"},
		{"SB", "e", "F", "Y", "v", "p1", "p2"},
		{"Plans"},
	} {
		if _, err := tree.CutOf(cut...); err != nil {
			t.Errorf("paper cut %v invalid: %v", cut, err)
		}
	}
}

func TestMonthsTreeQuarters(t *testing.T) {
	names := polynomial.NewNames()
	tree := MonthsTree(names, 12)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves()) != 12 {
		t.Fatalf("leaves = %d", len(tree.Leaves()))
	}
	c, err := tree.CutOf("q1", "q2", "q3", "q4")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVars() != 4 {
		t.Fatal("quarter cut")
	}
	// m1..m3 under q1.
	q1 := tree.ByName("q1")
	if got := len(tree.LeavesUnder(q1)); got != 3 {
		t.Fatalf("q1 has %d months", got)
	}
}

func TestScenarios(t *testing.T) {
	names := polynomial.NewNames()
	m := ScenarioMarchMinus20(names)
	if v, _ := names.Lookup("m3"); m.Get(v) != 0.8 {
		t.Fatal("March scenario")
	}
	b := ScenarioBusinessPlus10(names)
	for _, s := range []string{"b1", "b2", "e"} {
		if v, _ := names.Lookup(s); b.Get(v) != 1.1 {
			t.Fatalf("business scenario %s", s)
		}
	}
}

func TestFigure1DBShape(t *testing.T) {
	cat := Figure1DB()
	if cat["Cust"].Len() != 7 || cat["Calls"].Len() != 14 || cat["Plans"].Len() != 14 {
		t.Fatal("Figure 1 sizes")
	}
	names := polynomial.NewNames()
	if _, err := InstrumentPrices(cat, names); err != nil {
		t.Fatal(err)
	}
	// Instrumentation must not mutate the source catalog.
	for _, row := range cat["Plans"].Rows {
		if row.Values[2].Kind != 2 { // KindFloat
			t.Fatal("InstrumentPrices mutated input")
		}
	}
}
