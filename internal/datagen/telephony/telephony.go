// Package telephony generates the paper's running-example database: a
// telephony company with customers (plan, zip), per-month call durations,
// and per-month plan prices (Figure 1), plus the Figure-2 abstraction tree
// and the demo's hypothetical scenarios.
//
// Two construction paths are provided and tested to agree: the engine path
// (instrument Plans.Price, run the revenue query through the SQL engine)
// and a direct path that assembles the provenance polynomials without
// materializing the join — needed for the paper's 1M-customer measurement
// (Section 4), where the instrumented join would not fit in memory but the
// provenance (139,260 monomials) easily does.
package telephony

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// PlanNames are the paper's 11 calling plans: standard (A, B), families
// (F1, F2), youth (Y1..Y3), veterans (V), small business (SB1, SB2) and
// enterprise (E).
var PlanNames = []string{"A", "B", "F1", "F2", "Y1", "Y2", "Y3", "V", "SB1", "SB2", "E"}

// PlanVar maps a plan to its provenance variable, following Example 2.
var PlanVar = map[string]string{
	"A": "p1", "B": "p2", "F1": "f1", "F2": "f2",
	"Y1": "y1", "Y2": "y2", "Y3": "y3", "V": "v",
	"SB1": "b1", "SB2": "b2", "E": "e",
}

// basePrice is each plan's month-1 price per minute (Figure 1 for the plans
// it lists; paper-plausible values for the rest).
var basePrice = map[string]float64{
	"A": 0.4, "B": 0.45, "F1": 0.35, "F2": 0.3,
	"Y1": 0.3, "Y2": 0.28, "Y3": 0.26, "V": 0.25,
	"SB1": 0.1, "SB2": 0.1, "E": 0.05,
}

// MonthVar returns the month variable name (m1..m12).
func MonthVar(m int) string { return fmt.Sprintf("m%d", m) }

// RevenueQuery is the running example: revenue per zip code.
const RevenueQuery = `
SELECT Cust.Zip, SUM(Calls.Dur * Plans.Price) AS revenue
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan
  AND Cust.ID = Calls.CID
  AND Calls.Mo = Plans.Mo
GROUP BY Cust.Zip
ORDER BY Cust.Zip`

// Config controls the scalable generator.
type Config struct {
	// Customers is the number of customers (default 10,000).
	Customers int
	// Zips is the number of zip codes; 0 derives ceil(Customers/948),
	// which reproduces the paper's 1,055 zips at one million customers.
	Zips int
	// Months is the number of months with call data (default 12).
	Months int
}

func (c Config) withDefaults() Config {
	if c.Customers <= 0 {
		c.Customers = 10_000
	}
	if c.Zips <= 0 {
		c.Zips = (c.Customers + 947) / 948
	}
	if c.Months <= 0 {
		c.Months = 12
	}
	return c
}

// zipName formats the i-th zip code (10001, 10002, ...).
func zipName(i int) string { return fmt.Sprintf("%d", 10001+i) }

// planOf deterministically assigns plans round-robin within each zip, so
// every zip with at least 11·Zips customers covers every plan.
func planOf(custIdx, zips int) string { return PlanNames[(custIdx/zips)%len(PlanNames)] }

// duration is a deterministic pseudo-random call duration in minutes for a
// (customer, month) pair — a hash, not an RNG stream, so the direct
// provenance path can evaluate it out of order.
func duration(custIdx, month int) int {
	h := uint64(custIdx)*0x9E3779B97F4A7C15 + uint64(month)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return 60 + int(h%1141)
}

// price is the deterministic per-month price of a plan: the base price
// scaled by a factor cycling through {0.8, 0.9, 1.0, 1.1, 1.2}.
func price(planIdx, month int) float64 {
	factor := 0.8 + 0.1*float64((month*7+planIdx*3)%5)
	return basePrice[PlanNames[planIdx]] * factor
}

// Generate materializes the database at the configured scale. Memory grows
// with Customers × Months; use DirectProvenance for paper-scale provenance.
func Generate(cfg Config) engine.Catalog {
	cfg = cfg.withDefaults()

	cust := relation.NewRelation("Cust", relation.NewSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt},
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Zip", Kind: relation.KindString},
	))
	calls := relation.NewRelation("Calls", relation.NewSchema(
		relation.Column{Name: "CID", Kind: relation.KindInt},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
		relation.Column{Name: "Dur", Kind: relation.KindFloat},
	))
	for i := 0; i < cfg.Customers; i++ {
		cust.Append(relation.Int(int64(i+1)), relation.Str(planOf(i, cfg.Zips)), relation.Str(zipName(i%cfg.Zips)))
		for m := 1; m <= cfg.Months; m++ {
			calls.Append(relation.Int(int64(i+1)), relation.Int(int64(m)), relation.Float(float64(duration(i, m))))
		}
	}

	plans := relation.NewRelation("Plans", relation.NewSchema(
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
		relation.Column{Name: "Price", Kind: relation.KindFloat},
	))
	for pi, plan := range PlanNames {
		for m := 1; m <= cfg.Months; m++ {
			plans.Append(relation.Str(plan), relation.Int(int64(m)), relation.Float(price(pi, m)))
		}
	}

	return engine.Catalog{"Cust": cust, "Calls": calls, "Plans": plans}
}

// InstrumentPrices parameterizes every price cell with its plan and month
// variables: price(plan, m) becomes price·<planVar>·m<m> (Example 2).
func InstrumentPrices(cat engine.Catalog, names *polynomial.Names) (engine.Catalog, error) {
	plans, ok := cat["Plans"]
	if !ok {
		return nil, fmt.Errorf("telephony: catalog has no Plans relation")
	}
	clone := plans.Clone()
	planIdx, err := clone.Schema.Index("Plan")
	if err != nil {
		return nil, err
	}
	moIdx, err := clone.Schema.Index("Mo")
	if err != nil {
		return nil, err
	}
	priceIdx, err := clone.Schema.Index("Price")
	if err != nil {
		return nil, err
	}
	for ri := range clone.Rows {
		row := &clone.Rows[ri]
		plan := row.Values[planIdx].S
		pv, ok := PlanVar[plan]
		if !ok {
			return nil, fmt.Errorf("telephony: unknown plan %q", plan)
		}
		mo := int(row.Values[moIdx].I)
		base, ok := row.Values[priceIdx].AsFloat()
		if !ok {
			return nil, fmt.Errorf("telephony: price is not numeric")
		}
		p := polynomial.New(polynomial.Mono(base,
			polynomial.T(names.Var(pv)), polynomial.T(names.Var(MonthVar(mo)))))
		row.Values[priceIdx] = relation.Poly(p)
	}
	out := make(engine.Catalog, len(cat))
	for k, v := range cat {
		out[k] = v
	}
	out["Plans"] = clone
	return out, nil
}

// DirectProvenance assembles the revenue query's provenance polynomials
// without materializing the join: for each zip, the polynomial
// Σ_{plan,month} (Σ_{cust} dur) · price · planVar · monthVar. It matches the
// engine path up to floating-point summation order.
func DirectProvenance(cfg Config, names *polynomial.Names) *polynomial.Set {
	cfg = cfg.withDefaults()
	nPlans := len(PlanNames)
	// coef[zip][plan][month-1]
	coef := make([][][]float64, cfg.Zips)
	for z := range coef {
		coef[z] = make([][]float64, nPlans)
		for p := range coef[z] {
			coef[z][p] = make([]float64, cfg.Months)
		}
	}
	for i := 0; i < cfg.Customers; i++ {
		z := i % cfg.Zips
		p := (i / cfg.Zips) % nPlans
		for m := 1; m <= cfg.Months; m++ {
			coef[z][p][m-1] += float64(duration(i, m)) * price(p, m)
		}
	}

	planVars := make([]polynomial.Var, nPlans)
	for p, plan := range PlanNames {
		planVars[p] = names.Var(PlanVar[plan])
	}
	monthVars := make([]polynomial.Var, cfg.Months)
	for m := 0; m < cfg.Months; m++ {
		monthVars[m] = names.Var(MonthVar(m + 1))
	}

	set := polynomial.NewSet(names)
	for z := 0; z < cfg.Zips; z++ {
		var b polynomial.Builder
		b.Grow(nPlans * cfg.Months)
		for p := 0; p < nPlans; p++ {
			for m := 0; m < cfg.Months; m++ {
				if c := coef[z][p][m]; c != 0 {
					b.Add(c, polynomial.T(planVars[p]), polynomial.T(monthVars[m]))
				}
			}
		}
		//cobra:sinkerr in-memory Set.Add is documented to never fail
		set.Add(zipName(z), b.Polynomial())
	}
	return set
}

// PlansTree builds the Figure-2 abstraction tree over the plan variables.
func PlansTree(names *polynomial.Names) *abstraction.Tree {
	t, err := abstraction.FromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Standard", "p2"},
		[]string{"Special", "Y", "y1"},
		[]string{"Special", "Y", "y2"},
		[]string{"Special", "Y", "y3"},
		[]string{"Special", "F", "f1"},
		[]string{"Special", "F", "f2"},
		[]string{"Special", "v"},
		[]string{"Business", "SB", "b1"},
		[]string{"Business", "SB", "b2"},
		[]string{"Business", "e"},
	)
	if err != nil {
		panic(err) // static structure; cannot fail
	}
	return t
}

// MonthsTree builds the quarter tree from Section 4 ("quarter
// meta-variables q1...q4 ... the variables m1,...,m3 are the children of
// q1") over months 1..months.
func MonthsTree(names *polynomial.Names, months int) *abstraction.Tree {
	if months <= 0 {
		months = 12
	}
	t := abstraction.NewTree("Year", names)
	for m := 1; m <= months; m++ {
		q := (m + 2) / 3
		if _, err := t.AddPath(fmt.Sprintf("q%d", q), MonthVar(m)); err != nil {
			panic(err)
		}
	}
	return t
}

// Figure1DB returns the exact database of Figure 1 (7 customers, months 1
// and 3) whose revenue-query provenance is Example 2's P1 and P2.
func Figure1DB() engine.Catalog {
	cust := relation.NewRelation("Cust", relation.NewSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt},
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Zip", Kind: relation.KindString},
	))
	for _, r := range []struct {
		id   int64
		plan string
		zip  string
	}{
		{1, "A", "10001"}, {2, "F1", "10001"}, {3, "SB1", "10002"},
		{4, "Y1", "10001"}, {5, "V", "10001"}, {6, "E", "10002"}, {7, "SB2", "10002"},
	} {
		cust.Append(relation.Int(r.id), relation.Str(r.plan), relation.Str(r.zip))
	}

	calls := relation.NewRelation("Calls", relation.NewSchema(
		relation.Column{Name: "CID", Kind: relation.KindInt},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
		relation.Column{Name: "Dur", Kind: relation.KindFloat},
	))
	durs := []struct {
		cid    int64
		m1, m3 float64
	}{
		{1, 522, 480}, {2, 364, 327}, {3, 779, 805}, {4, 253, 290},
		{5, 168, 121}, {6, 1044, 1130}, {7, 697, 671},
	}
	for _, d := range durs {
		calls.Append(relation.Int(d.cid), relation.Int(1), relation.Float(d.m1))
		calls.Append(relation.Int(d.cid), relation.Int(3), relation.Float(d.m3))
	}

	plans := relation.NewRelation("Plans", relation.NewSchema(
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
		relation.Column{Name: "Price", Kind: relation.KindFloat},
	))
	prices := []struct {
		plan   string
		m1, m3 float64
	}{
		{"A", 0.4, 0.5}, {"F1", 0.35, 0.35}, {"Y1", 0.3, 0.25}, {"V", 0.25, 0.2},
		{"SB1", 0.1, 0.1}, {"SB2", 0.1, 0.15}, {"E", 0.05, 0.05},
	}
	for _, p := range prices {
		plans.Append(relation.Str(p.plan), relation.Int(1), relation.Float(p.m1))
		plans.Append(relation.Str(p.plan), relation.Int(3), relation.Float(p.m3))
	}

	return engine.Catalog{"Cust": cust, "Calls": calls, "Plans": plans}
}

// ScenarioMarchMinus20 is the paper's first hypothetical: "what if the ppm
// of all plans are decreased by 20% on March?" — m3 := 0.8.
func ScenarioMarchMinus20(names *polynomial.Names) *valuation.Assignment {
	a := valuation.New(names)
	a.SetVar(names.Var("m3"), 0.8)
	return a
}

// ScenarioBusinessPlus10 is the paper's second hypothetical: "what if the
// ppm in the business calling plans are increased by 10%?" — b1, b2, e := 1.1.
func ScenarioBusinessPlus10(names *polynomial.Names) *valuation.Assignment {
	a := valuation.New(names)
	for _, v := range []string{"b1", "b2", "e"} {
		a.SetVar(names.Var(v), 1.1)
	}
	return a
}
