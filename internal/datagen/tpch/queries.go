package tpch

// The TPC-H queries used by the demo, in two forms. The *Prov variants are
// the provenance-capture forms: they project the group keys plus a single
// revenue aggregate, and omit ORDER BY over the aggregate — a symbolic
// result has no order until a valuation is applied. The plain variants are
// the full queries, runnable on concrete (un-instrumented) data to validate
// the engine.

// Q1 is the pricing summary report.
const Q1 = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

// Q1Prov is the provenance form of Q1.
const Q1Prov = `
SELECT l_returnflag, l_linestatus,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS revenue
FROM lineitem
WHERE l_shipdate <= '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

// Q3 is the shipping priority query.
const Q3 = `
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < '1995-03-15'
  AND l_shipdate > '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10`

// Q3Prov is the provenance form of Q3 (no ordering by the symbolic
// aggregate, no LIMIT — all groups are kept).
const Q3Prov = `
SELECT l_orderkey, o_orderdate, o_shippriority,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < '1995-03-15'
  AND l_shipdate > '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY o_orderdate, l_orderkey`

// Q5 is the local supplier volume query.
const Q5 = `
SELECT n_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= '1994-01-01'
  AND o_orderdate < '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC`

// Q5Prov is the provenance form of Q5.
const Q5Prov = `
SELECT n_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= '1994-01-01'
  AND o_orderdate < '1995-01-01'
GROUP BY n_name
ORDER BY n_name`

// Q6 is the forecasting revenue change query — the canonical hypothetical-
// reasoning query ("how much revenue would have been gained if...").
const Q6 = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= '1994-01-01'
  AND l_shipdate < '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`

// Q6Prov is identical to Q6: its single aggregate is the provenance target.
const Q6Prov = Q6

// Q10 is the returned item reporting query.
const Q10 = `
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       n_name
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= '1993-10-01'
  AND o_orderdate < '1994-01-01'
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, n_name
ORDER BY revenue DESC
LIMIT 20`

// Q10Prov is the provenance form of Q10.
const Q10Prov = `
SELECT c_custkey, c_name, n_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= '1993-10-01'
  AND o_orderdate < '1994-01-01'
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, n_name
ORDER BY c_custkey`

// Q12 is the shipping modes and order priority query. TPC-H's original
// predicate uses l_commitdate/l_receiptdate, which our schema does not
// carry; the ship-date range below preserves the query's shape (two
// conditional counts over a ship-mode slice of a lineitem⋈orders join).
const Q12 = `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_shipdate >= '1994-01-01'
  AND l_shipdate < '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode`

// Q12Prov gates revenue by priority instead of counting, so the provenance
// carries the price variables.
const Q12Prov = `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN l_extendedprice ELSE 0 END) AS revenue
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_shipdate >= '1994-01-01'
  AND l_shipdate < '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode`

// Q14 is the promotion effect query (ratio of promo revenue to total).
const Q14 = `
SELECT 100 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                      THEN l_extendedprice * (1 - l_discount)
                      ELSE 0 END)
         / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= '1995-09-01'
  AND l_shipdate < '1995-10-01'`

// Q14Prov captures the numerator (promo revenue) — a ratio of two symbolic
// sums is not itself a polynomial.
const Q14Prov = `
SELECT SUM(CASE WHEN p_type LIKE 'PROMO%'
                THEN l_extendedprice * (1 - l_discount)
                ELSE 0 END) AS revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= '1995-09-01'
  AND l_shipdate < '1995-10-01'`

// Query describes one benchmark query for the experiment harness.
type Query struct {
	Name     string
	Full     string // concrete-data form
	Prov     string // provenance-capture form
	ValueCol string // the provenance value column
}

// Queries is the benchmark subset presented in the demo.
var Queries = []Query{
	{Name: "Q1", Full: Q1, Prov: Q1Prov, ValueCol: "revenue"},
	{Name: "Q3", Full: Q3, Prov: Q3Prov, ValueCol: "revenue"},
	{Name: "Q5", Full: Q5, Prov: Q5Prov, ValueCol: "revenue"},
	{Name: "Q6", Full: Q6, Prov: Q6Prov, ValueCol: "revenue"},
	{Name: "Q10", Full: Q10, Prov: Q10Prov, ValueCol: "revenue"},
	{Name: "Q12", Full: Q12, Prov: Q12Prov, ValueCol: "revenue"},
	{Name: "Q14", Full: Q14, Prov: Q14Prov, ValueCol: "revenue"},
}
