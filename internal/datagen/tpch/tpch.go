// Package tpch is a deterministic, scaled-down TPC-H data generator and
// query set — the business-analytics workload of the demo's second phase
// ("we will demonstrate COBRA in the context of TPC Benchmark H"). It
// produces the eight TPC-H tables with spec-shaped value distributions at a
// configurable scale factor, instrumentation policies that parameterize
// lineitem prices by ship month or by supplier nation, and the abstraction
// trees (month→quarter→year; nation→region) used to compress the resulting
// provenance.
//
// Two helper columns are added to lineitem (l_shipmonth, l_suppnation) so
// cell-level instrumentation can derive variables without denormalizing
// joins at instrumentation time; queries never depend on them.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/relation"
)

// Config scales the generator.
type Config struct {
	// SF is the TPC-H scale factor; 1.0 is the full benchmark size. The
	// default 0.01 generates ~60k lineitems, laptop-friendly.
	SF float64
	// Seed drives the deterministic pseudo-random streams.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SF <= 0 {
		c.SF = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 19920101
	}
	return c
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations maps each TPC-H nation to its region index (per the spec).
var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var typeSyllables = [][]string{
	{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"},
	{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"},
	{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"},
}

var startDate = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

const (
	// orderDateRange is the span of o_orderdate (through 1998-08-02).
	orderDateRange = 2405
	dateFormat     = "2006-01-02"
)

func fmtDate(daysSinceStart int) string {
	return startDate.AddDate(0, 0, daysSinceStart).Format(dateFormat)
}

func monthOf(daysSinceStart int) string {
	return startDate.AddDate(0, 0, daysSinceStart).Format("2006-01")
}

// Generate builds the catalog at the configured scale.
func Generate(cfg Config) engine.Catalog {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	nSupp := scaleCount(10_000, cfg.SF, 10)
	nCust := scaleCount(150_000, cfg.SF, 30)
	nPart := scaleCount(200_000, cfg.SF, 40)
	nOrders := scaleCount(1_500_000, cfg.SF, 150)

	cat := engine.Catalog{}

	region := relation.NewRelation("region", relation.NewSchema(
		relation.Column{Name: "r_regionkey", Kind: relation.KindInt},
		relation.Column{Name: "r_name", Kind: relation.KindString},
	))
	for i, name := range regions {
		region.Append(relation.Int(int64(i)), relation.Str(name))
	}
	cat["region"] = region

	nation := relation.NewRelation("nation", relation.NewSchema(
		relation.Column{Name: "n_nationkey", Kind: relation.KindInt},
		relation.Column{Name: "n_name", Kind: relation.KindString},
		relation.Column{Name: "n_regionkey", Kind: relation.KindInt},
	))
	for i, n := range nations {
		nation.Append(relation.Int(int64(i)), relation.Str(n.name), relation.Int(int64(n.region)))
	}
	cat["nation"] = nation

	supplier := relation.NewRelation("supplier", relation.NewSchema(
		relation.Column{Name: "s_suppkey", Kind: relation.KindInt},
		relation.Column{Name: "s_name", Kind: relation.KindString},
		relation.Column{Name: "s_nationkey", Kind: relation.KindInt},
		relation.Column{Name: "s_acctbal", Kind: relation.KindFloat},
	))
	suppNation := make([]int, nSupp+1)
	for i := 1; i <= nSupp; i++ {
		nk := r.Intn(len(nations))
		suppNation[i] = nk
		supplier.Append(
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("Supplier#%09d", i)),
			relation.Int(int64(nk)),
			relation.Float(round2(-999.99+r.Float64()*10999.98)),
		)
	}
	cat["supplier"] = supplier

	customer := relation.NewRelation("customer", relation.NewSchema(
		relation.Column{Name: "c_custkey", Kind: relation.KindInt},
		relation.Column{Name: "c_name", Kind: relation.KindString},
		relation.Column{Name: "c_nationkey", Kind: relation.KindInt},
		relation.Column{Name: "c_mktsegment", Kind: relation.KindString},
		relation.Column{Name: "c_acctbal", Kind: relation.KindFloat},
	))
	for i := 1; i <= nCust; i++ {
		customer.Append(
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("Customer#%09d", i)),
			relation.Int(int64(r.Intn(len(nations)))),
			relation.Str(segments[r.Intn(len(segments))]),
			relation.Float(round2(-999.99+r.Float64()*10999.98)),
		)
	}
	cat["customer"] = customer

	part := relation.NewRelation("part", relation.NewSchema(
		relation.Column{Name: "p_partkey", Kind: relation.KindInt},
		relation.Column{Name: "p_name", Kind: relation.KindString},
		relation.Column{Name: "p_brand", Kind: relation.KindString},
		relation.Column{Name: "p_type", Kind: relation.KindString},
		relation.Column{Name: "p_retailprice", Kind: relation.KindFloat},
	))
	partPrice := make([]float64, nPart+1)
	for i := 1; i <= nPart; i++ {
		price := round2(900 + float64(i%1000)/10 + 100*float64(i%10))
		partPrice[i] = price
		part.Append(
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("part %d", i)),
			relation.Str(fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))),
			relation.Str(typeSyllables[0][r.Intn(6)]+" "+typeSyllables[1][r.Intn(5)]+" "+typeSyllables[2][r.Intn(5)]),
			relation.Float(price),
		)
	}
	cat["part"] = part

	partsupp := relation.NewRelation("partsupp", relation.NewSchema(
		relation.Column{Name: "ps_partkey", Kind: relation.KindInt},
		relation.Column{Name: "ps_suppkey", Kind: relation.KindInt},
		relation.Column{Name: "ps_supplycost", Kind: relation.KindFloat},
		relation.Column{Name: "ps_availqty", Kind: relation.KindInt},
	))
	for i := 1; i <= nPart; i++ {
		for j := 0; j < 4; j++ {
			sk := 1 + (i+j*(nSupp/4+1))%nSupp
			partsupp.Append(
				relation.Int(int64(i)),
				relation.Int(int64(sk)),
				relation.Float(round2(1+r.Float64()*999)),
				relation.Int(int64(1+r.Intn(9999))),
			)
		}
	}
	cat["partsupp"] = partsupp

	orders := relation.NewRelation("orders", relation.NewSchema(
		relation.Column{Name: "o_orderkey", Kind: relation.KindInt},
		relation.Column{Name: "o_custkey", Kind: relation.KindInt},
		relation.Column{Name: "o_orderstatus", Kind: relation.KindString},
		relation.Column{Name: "o_totalprice", Kind: relation.KindFloat},
		relation.Column{Name: "o_orderdate", Kind: relation.KindString},
		relation.Column{Name: "o_orderpriority", Kind: relation.KindString},
		relation.Column{Name: "o_shippriority", Kind: relation.KindInt},
	))
	lineitem := relation.NewRelation("lineitem", relation.NewSchema(
		relation.Column{Name: "l_orderkey", Kind: relation.KindInt},
		relation.Column{Name: "l_partkey", Kind: relation.KindInt},
		relation.Column{Name: "l_suppkey", Kind: relation.KindInt},
		relation.Column{Name: "l_linenumber", Kind: relation.KindInt},
		relation.Column{Name: "l_quantity", Kind: relation.KindFloat},
		relation.Column{Name: "l_extendedprice", Kind: relation.KindFloat},
		relation.Column{Name: "l_discount", Kind: relation.KindFloat},
		relation.Column{Name: "l_tax", Kind: relation.KindFloat},
		relation.Column{Name: "l_returnflag", Kind: relation.KindString},
		relation.Column{Name: "l_linestatus", Kind: relation.KindString},
		relation.Column{Name: "l_shipdate", Kind: relation.KindString},
		relation.Column{Name: "l_shipmode", Kind: relation.KindString},
		relation.Column{Name: "l_shipmonth", Kind: relation.KindString},
		relation.Column{Name: "l_suppnation", Kind: relation.KindString},
	))
	cutoff := time.Date(1995, 6, 17, 0, 0, 0, 0, time.UTC)
	for ok := 1; ok <= nOrders; ok++ {
		odate := r.Intn(orderDateRange)
		nLines := 1 + r.Intn(7)
		var total float64
		for ln := 1; ln <= nLines; ln++ {
			pk := 1 + r.Intn(nPart)
			sk := 1 + r.Intn(nSupp)
			qty := float64(1 + r.Intn(50))
			eprice := round2(qty * partPrice[pk] / 10)
			disc := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			sdate := odate + 1 + r.Intn(121)
			ship := startDate.AddDate(0, 0, sdate)
			status := "F"
			if ship.After(cutoff) {
				status = "O"
			}
			rflag := "N"
			if !ship.After(cutoff) {
				if r.Intn(2) == 0 {
					rflag = "R"
				} else {
					rflag = "A"
				}
			}
			total += eprice * (1 - disc) * (1 + tax)
			lineitem.Append(
				relation.Int(int64(ok)),
				relation.Int(int64(pk)),
				relation.Int(int64(sk)),
				relation.Int(int64(ln)),
				relation.Float(qty),
				relation.Float(eprice),
				relation.Float(disc),
				relation.Float(tax),
				relation.Str(rflag),
				relation.Str(status),
				relation.Str(fmtDate(sdate)),
				relation.Str(shipModes[r.Intn(len(shipModes))]),
				relation.Str(monthOf(sdate)),
				relation.Str(nations[suppNation[sk]].name),
			)
		}
		statuses := []string{"F", "O", "P"}
		orders.Append(
			relation.Int(int64(ok)),
			relation.Int(int64(1+r.Intn(nCust))),
			relation.Str(statuses[r.Intn(3)]),
			relation.Float(round2(total)),
			relation.Str(fmtDate(odate)),
			relation.Str(orderPriorities[r.Intn(len(orderPriorities))]),
			relation.Int(int64(r.Intn(2))),
		)
	}
	cat["orders"] = orders
	cat["lineitem"] = lineitem

	return cat
}

func scaleCount(base int, sf float64, min int) int {
	n := int(float64(base) * sf)
	if n < min {
		n = min
	}
	return n
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

// InstrumentByShipMonth parameterizes l_extendedprice with one variable per
// ship month (mo_1992_01 .. mo_1998_12) — the "prices change per month"
// hypotheticals, compressible by the DateTree.
func InstrumentByShipMonth(cat engine.Catalog, names *polynomial.Names) (engine.Catalog, error) {
	return instrumentLineitem(cat, names, provenance.VarSpec{Prefix: "mo_", Columns: []string{"l_shipmonth"}})
}

// InstrumentBySupplierNation parameterizes l_extendedprice with one variable
// per supplier nation (nat_FRANCE, ...) — "supplier-country cost changes",
// compressible by the NationRegionTree.
func InstrumentBySupplierNation(cat engine.Catalog, names *polynomial.Names) (engine.Catalog, error) {
	return instrumentLineitem(cat, names, provenance.VarSpec{Prefix: "nat_", Columns: []string{"l_suppnation"}})
}

func instrumentLineitem(cat engine.Catalog, names *polynomial.Names, spec provenance.VarSpec) (engine.Catalog, error) {
	li, ok := cat["lineitem"]
	if !ok {
		return nil, fmt.Errorf("tpch: catalog has no lineitem")
	}
	inst, err := provenance.ParameterizeColumn(li, "l_extendedprice", []provenance.VarSpec{spec}, names)
	if err != nil {
		return nil, err
	}
	out := make(engine.Catalog, len(cat))
	for k, v := range cat {
		out[k] = v
	}
	out["lineitem"] = inst
	return out, nil
}

// DateTree builds the month→quarter→year abstraction tree over the ship
// months 1992-01 .. 1998-12 (84 leaves, 28 quarters, 7 years).
func DateTree(names *polynomial.Names) *abstraction.Tree {
	t := abstraction.NewTree("AllTime", names)
	for y := 1992; y <= 1998; y++ {
		for m := 1; m <= 12; m++ {
			q := (m + 2) / 3
			leaf := fmt.Sprintf("mo_%d_%02d", y, m)
			if _, err := t.AddPath(fmt.Sprintf("y%d", y), fmt.Sprintf("y%dq%d", y, q), leaf); err != nil {
				panic(err)
			}
		}
	}
	return t
}

// NationRegionTree builds the nation→region tree (25 leaves, 5 regions)
// used with InstrumentBySupplierNation.
func NationRegionTree(names *polynomial.Names) *abstraction.Tree {
	t := abstraction.NewTree("World", names)
	for _, n := range nations {
		region := sanitizeName(regions[n.region])
		if _, err := t.AddPath(region, "nat_"+sanitizeName(n.name)); err != nil {
			panic(err)
		}
	}
	return t
}

func sanitizeName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			c = '_'
		}
		out[i] = c
	}
	return string(out)
}
