package tpch

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/sql"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// smallCat is a shared tiny catalog for the test suite.
func smallCat(t testing.TB) map[string]*relation.Relation {
	t.Helper()
	return Generate(Config{SF: 0.002})
}

func TestGenerateShape(t *testing.T) {
	cat := smallCat(t)
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		rel, ok := cat[name]
		if !ok || rel.Len() == 0 {
			t.Fatalf("table %s missing or empty", name)
		}
	}
	if cat["region"].Len() != 5 || cat["nation"].Len() != 25 {
		t.Fatal("fixed tables wrong size")
	}
	if cat["partsupp"].Len() != 4*cat["part"].Len() {
		t.Fatal("partsupp should have 4 rows per part")
	}
	if cat["lineitem"].Len() < cat["orders"].Len() {
		t.Fatal("lineitem should be larger than orders")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(Config{SF: 0.002})
	b := Generate(Config{SF: 0.002})
	if a["lineitem"].Len() != b["lineitem"].Len() {
		t.Fatal("row counts differ")
	}
	for i := range a["lineitem"].Rows {
		ra, rb := a["lineitem"].Rows[i], b["lineitem"].Rows[i]
		for j := range ra.Values {
			if !ra.Values[j].Equal(rb.Values[j]) {
				t.Fatalf("row %d col %d: %s vs %s", i, j, ra.Values[j], rb.Values[j])
			}
		}
	}
}

func TestLineitemInvariants(t *testing.T) {
	cat := smallCat(t)
	li := cat["lineitem"]
	s := li.Schema
	idx := func(n string) int {
		i, err := s.Index(n)
		if err != nil {
			t.Fatal(err)
		}
		return i
	}
	disc, qty, ship, month, status := idx("l_discount"), idx("l_quantity"), idx("l_shipdate"), idx("l_shipmonth"), idx("l_linestatus")
	for _, row := range li.Rows {
		if d := row.Values[disc].F; d < 0 || d > 0.10 {
			t.Fatalf("discount %v out of range", d)
		}
		if q := row.Values[qty].F; q < 1 || q > 50 {
			t.Fatalf("quantity %v out of range", q)
		}
		sd := row.Values[ship].S
		if sd < "1992-01-02" || sd > "1999-01-01" {
			t.Fatalf("shipdate %s out of range", sd)
		}
		if got, want := row.Values[month].S, sd[:7]; got != want {
			t.Fatalf("shipmonth %s != %s", got, want)
		}
		st := row.Values[status].S
		if (sd > "1995-06-17") != (st == "O") {
			t.Fatalf("linestatus %s inconsistent with shipdate %s", st, sd)
		}
	}
}

func TestAllQueriesRunConcrete(t *testing.T) {
	cat := smallCat(t)
	for _, q := range Queries {
		out, err := sql.Run(q.Full, cat)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if q.Name != "Q3" && out.Len() == 0 { // Q3 can legitimately be empty at tiny SF
			t.Errorf("%s returned no rows", q.Name)
		}
	}
}

func TestQ1AggregatesConsistent(t *testing.T) {
	cat := smallCat(t)
	out, err := sql.Run(Q1, cat)
	if err != nil {
		t.Fatal(err)
	}
	// avg_qty = sum_qty / count_order for every group.
	for _, row := range out.Rows {
		sumQty, _ := row.Values[2].AsFloat()
		avgQty, _ := row.Values[6].AsFloat()
		n := float64(row.Values[9].I)
		if n == 0 {
			t.Fatal("empty group")
		}
		if diff := avgQty - sumQty/n; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("avg inconsistency: %v vs %v/%v", avgQty, sumQty, n)
		}
	}
}

func TestInstrumentByShipMonthProvenance(t *testing.T) {
	cat := smallCat(t)
	names := polynomial.NewNames()
	inst, err := InstrumentByShipMonth(cat, names)
	if err != nil {
		t.Fatal(err)
	}
	set, err := provenance.Capture(Q1Prov, inst, names, "revenue")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 || set.Size() == 0 {
		t.Fatal("no provenance captured")
	}
	// Each monomial must reference exactly one month variable.
	tree := DateTree(names)
	leafSet := tree.LeafVarSet()
	for _, p := range set.Polys {
		for _, m := range p.Mons {
			count := 0
			for _, term := range m.Terms {
				if _, ok := leafSet[term.Var]; ok {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("monomial with %d month vars", count)
			}
		}
	}
	// Compressing with the date tree reduces size monotonically with bound.
	res, err := core.DPSingleTree(set, tree, set.Size()/2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size > set.Size()/2 {
		t.Fatalf("compression exceeded bound: %d > %d", res.Size, set.Size()/2)
	}
}

func TestInstrumentByNationAndRegionTree(t *testing.T) {
	cat := smallCat(t)
	names := polynomial.NewNames()
	inst, err := InstrumentBySupplierNation(cat, names)
	if err != nil {
		t.Fatal(err)
	}
	set, err := provenance.Capture(Q5Prov, inst, names, "revenue")
	if err != nil {
		t.Fatal(err)
	}
	tree := NationRegionTree(names)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Leaves()); got != 25 {
		t.Fatalf("nation leaves = %d", got)
	}
	// Region cut (5 metas) is always a valid compression.
	cut, err := tree.CutOf("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE_EAST")
	if err != nil {
		t.Fatal(err)
	}
	comp := abstraction.Apply(set, cut)
	if comp.Size() > set.Size() {
		t.Fatal("region cut must not grow the provenance")
	}
}

func TestCommutationTPCH(t *testing.T) {
	// The correctness guarantee holds on TPC-H too: scale two months'
	// prices, compare polynomial valuation vs re-execution (Q6).
	cat := smallCat(t)
	names := polynomial.NewNames()
	inst, err := InstrumentByShipMonth(cat, names)
	if err != nil {
		t.Fatal(err)
	}
	a := valuation.New(names)
	a.SetVar(names.Var("mo_1994_03"), 1.2)
	a.SetVar(names.Var("mo_1994_04"), 0.7)
	rep, err := provenance.CheckCommutation(Q6Prov, inst, names, "revenue", a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok(1e-9) {
		t.Fatalf("commutation violated: %+v", rep)
	}
}

func TestDateTreeShape(t *testing.T) {
	names := polynomial.NewNames()
	tree := DateTree(names)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Leaves()); got != 84 {
		t.Fatalf("leaves = %d, want 84", got)
	}
	// 1 root + 7 years + 28 quarters + 84 months = 120 nodes.
	if tree.Len() != 120 {
		t.Fatalf("nodes = %d, want 120", tree.Len())
	}
	if _, err := tree.CutOf("y1992", "y1993", "y1994", "y1995", "y1996", "y1997", "y1998"); err != nil {
		t.Fatal(err)
	}
}

func TestScaleCount(t *testing.T) {
	if scaleCount(10000, 0.01, 10) != 100 {
		t.Fatal("scale 0.01")
	}
	if scaleCount(10000, 0.00001, 10) != 10 {
		t.Fatal("minimum not applied")
	}
}

func TestQ12CountsPartitionLineitems(t *testing.T) {
	cat := smallCat(t)
	out, err := sql.Run(Q12, cat)
	if err != nil {
		t.Fatal(err)
	}
	// high + low must equal the total matching lineitems per ship mode.
	check, err := sql.Run(`SELECT l_shipmode, COUNT(*) AS n FROM orders, lineitem
		WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
		AND l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
		GROUP BY l_shipmode ORDER BY l_shipmode`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != check.Len() {
		t.Fatalf("groups: %d vs %d", out.Len(), check.Len())
	}
	for i := range out.Rows {
		hi, _ := out.Rows[i].Values[1].AsFloat()
		lo, _ := out.Rows[i].Values[2].AsFloat()
		total := float64(check.Rows[i].Values[1].I)
		if hi+lo != total {
			t.Fatalf("%s: %v + %v != %v", out.Rows[i].Values[0].S, hi, lo, total)
		}
	}
}

func TestQ14RatioInRange(t *testing.T) {
	cat := smallCat(t)
	out, err := sql.Run(Q14, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	ratio, ok := out.Rows[0].Values[0].AsFloat()
	if !ok || ratio < 0 || ratio > 100 {
		t.Fatalf("promo_revenue = %v", out.Rows[0].Values[0])
	}
}

func TestQ12ProvCommutation(t *testing.T) {
	// CASE-gated sums still satisfy the commutation guarantee.
	cat := smallCat(t)
	names := polynomial.NewNames()
	inst, err := InstrumentByShipMonth(cat, names)
	if err != nil {
		t.Fatal(err)
	}
	a := valuation.New(names)
	a.SetVar(names.Var("mo_1994_05"), 1.3)
	rep, err := provenance.CheckCommutation(Q12Prov, inst, names, "revenue", a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok(1e-9) {
		t.Fatalf("commutation violated: %+v", rep)
	}
}
