package cfg

import (
	"go/ast"
	"go/token"
	"sort"
)

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder of a depth-first walk — the order forward dataflow
// analyses iterate in (every block after as many of its predecessors
// as the loop structure allows).
func (g *Graph) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// A Loop is one natural loop: the head (target of one or more back
// edges) and the set of blocks that reach the back edges without
// passing through the head.
type Loop struct {
	Head   *Block
	Blocks map[*Block]bool

	// Stmt is the for/range statement that formed the loop, or nil for
	// a loop formed by goto.
	Stmt ast.Stmt
}

// Contains reports whether pos falls within the loop's source span —
// the syntactic extent of its statement for a structured loop, the
// min/max node span of its blocks for a goto loop. Analyzers use it to
// decide whether a declaration is loop-local.
func (l *Loop) Contains(pos token.Pos) bool {
	if l.Stmt != nil {
		return l.Stmt.Pos() <= pos && pos < l.Stmt.End()
	}
	lo, hi := token.Pos(0), token.Pos(0)
	for b := range l.Blocks {
		for _, n := range b.Nodes {
			if lo == 0 || n.Pos() < lo {
				lo = n.Pos()
			}
			if n.End() > hi {
				hi = n.End()
			}
		}
	}
	return lo != 0 && lo <= pos && pos < hi
}

// Loops detects the graph's natural loops via depth-first back edges
// (structured Go control flow is reducible, where the two coincide) and
// returns them ordered by head block index. Back edges sharing a head
// are merged into one Loop.
func (g *Graph) Loops() []*Loop {
	// DFS from entry; an edge u->v with v on the current stack is a
	// back edge.
	const (
		white = iota
		gray
		black
	)
	color := make([]int, len(g.Blocks))
	type edge struct{ u, v *Block }
	var back []edge
	var dfs func(b *Block)
	dfs = func(b *Block) {
		color[b.Index] = gray
		for _, s := range b.Succs {
			switch color[s.Index] {
			case white:
				dfs(s)
			case gray:
				back = append(back, edge{b, s})
			}
		}
		color[b.Index] = black
	}
	dfs(g.Entry)

	byHead := make(map[*Block]*Loop)
	for _, e := range back {
		l := byHead[e.v]
		if l == nil {
			l = &Loop{Head: e.v, Blocks: map[*Block]bool{e.v: true}, Stmt: g.structHeads[e.v]}
			byHead[e.v] = l
		}
		// Natural loop: walk predecessors back from u, stopping at the
		// head.
		stack := []*Block{e.u}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Blocks[b] {
				continue
			}
			l.Blocks[b] = true
			stack = append(stack, b.Preds...)
		}
	}
	out := make([]*Loop, 0, len(byHead))
	for _, l := range byHead {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Head.Index < out[j].Head.Index })
	return out
}
