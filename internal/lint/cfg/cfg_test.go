package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function and returns its graph.
// src is the full file; the graph is built for the function named fn.
func build(t *testing.T, src, fn string) (*token.FileSet, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fset, New(fd.Body)
		}
	}
	t.Fatalf("no function %q", fn)
	return nil, nil
}

// nodeText renders a node's source-ish identity for assertions.
func describe(fset *token.FileSet, n ast.Node) string {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if c, ok := n.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				return id.Name + "()"
			}
		}
	case *ast.Ident:
		return n.Name
	}
	return strings.TrimPrefix(strings.TrimPrefix(nodeType(n), "*ast."), "ast.")
}

func nodeType(n ast.Node) string {
	switch n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.ReturnStmt:
		return "return"
	case *ast.RangeStmt:
		return "range"
	case *ast.DeferStmt:
		return "defer"
	case *ast.BinaryExpr:
		return "cond"
	default:
		return "node"
	}
}

func TestStraightLine(t *testing.T) {
	_, g := build(t, `func f() { x := 1; x++; _ = x }`, "f")
	rpo := g.ReversePostorder()
	if rpo[0] != g.Entry {
		t.Fatalf("RPO must start at entry")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Loops()) != 0 {
		t.Fatalf("straight-line code has loops")
	}
	// Entry falls through to Exit.
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry succs = %v, want [Exit]", g.Entry.Succs)
	}
}

func TestIfElseJoin(t *testing.T) {
	fset, g := build(t, `
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	_ = fset
	// Entry (x:=0, cond) branches to then and else; both join; join returns.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2", len(g.Entry.Succs))
	}
	thenB, elseB := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(thenB.Succs) != 1 || len(elseB.Succs) != 1 || thenB.Succs[0] != elseB.Succs[0] {
		t.Fatalf("then/else do not join")
	}
	join := thenB.Succs[0]
	if len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Fatalf("join does not return to exit")
	}
	if len(g.Loops()) != 0 {
		t.Fatalf("if/else has loops")
	}
}

func TestThenBlockMapping(t *testing.T) {
	fset, g := build(t, `
func f(c bool) {
	if c {
		println("t")
	}
	println("after")
}`, "f")
	_ = fset
	var ifs *ast.IfStmt
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if s, ok := n.(*ast.IfStmt); ok {
					ifs = s
				}
				return true
			})
		}
	}
	// The if statement itself is decomposed (cond in one block, body in
	// another), so find it from the source instead.
	fset2 := token.NewFileSet()
	f, _ := parser.ParseFile(fset2, "src.go", `package p
func f(c bool) {
	if c {
		println("t")
	}
	println("after")
}`, parser.SkipObjectResolution)
	fd := f.Decls[0].(*ast.FuncDecl)
	ifs = fd.Body.List[0].(*ast.IfStmt)
	g2 := New(fd.Body)
	then := g2.ThenBlock(ifs)
	if then == nil {
		t.Fatalf("no then block recorded")
	}
	found := false
	for _, n := range then.Nodes {
		if es, ok := n.(*ast.ExprStmt); ok {
			if c, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "println" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("then block does not hold the then-branch body")
	}
}

func TestForLoop(t *testing.T) {
	_, g := build(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if _, ok := l.Stmt.(*ast.ForStmt); !ok {
		t.Fatalf("loop stmt is %T, want *ast.ForStmt", l.Stmt)
	}
	// Head (cond), body (s += i) and post (i++) are all in the loop.
	if len(l.Blocks) < 3 {
		t.Fatalf("for loop has %d blocks, want >= 3 (head, body, post)", len(l.Blocks))
	}
	// The body statement is inside the loop span.
	body := l.Stmt.(*ast.ForStmt).Body.List[0]
	if !l.Contains(body.Pos()) {
		t.Fatalf("loop does not contain its own body")
	}
	// The return is not.
	if l.Contains(l.Stmt.End() + 10) {
		t.Fatalf("loop contains statements after it")
	}
}

func TestRangeLoopAndBreak(t *testing.T) {
	_, g := build(t, `
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			break
		}
		s += x
	}
	return s
}`, "f")
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	if _, ok := loops[0].Stmt.(*ast.RangeStmt); !ok {
		t.Fatalf("loop stmt is %T, want *ast.RangeStmt", loops[0].Stmt)
	}
	// break leaves the loop: some loop block has a successor outside it.
	leaves := false
	for b := range loops[0].Blocks {
		for _, s := range b.Succs {
			if !loops[0].Blocks[s] {
				leaves = true
			}
		}
	}
	if !leaves {
		t.Fatalf("break edge out of the loop not found")
	}
}

func TestNestedLoops(t *testing.T) {
	_, g := build(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s++
		}
	}
	return s
}`, "f")
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	// The outer loop's block set contains the inner loop's head.
	outer, inner := loops[0], loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	if !outer.Blocks[inner.Head] {
		t.Fatalf("outer loop does not contain inner loop head")
	}
}

func TestGotoLoop(t *testing.T) {
	_, g := build(t, `
func f(n int) int {
	i := 0
top:
	i++
	if i < n {
		goto top
	}
	return i
}`, "f")
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	if loops[0].Stmt != nil {
		t.Fatalf("goto loop should have no structural stmt, got %T", loops[0].Stmt)
	}
	// The i++ statement is inside the loop span.
	found := false
	for b := range loops[0].Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.IncDecStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("goto loop misses its body")
	}
}

func TestDeferCollection(t *testing.T) {
	_, g := build(t, `
func f(c bool) {
	defer println("a")
	if c {
		defer println("b")
	}
}`, "f")
	if len(g.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(g.Defers))
	}
	// Defers also appear as block nodes in source order.
	count := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				count++
			}
		}
	}
	if count != 2 {
		t.Fatalf("defer nodes in blocks = %d, want 2", count)
	}
}

func TestReturnEndsBlock(t *testing.T) {
	_, g := build(t, `
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`, "f")
	// Both returns edge into Exit.
	n := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				n++
			}
		}
	}
	if n < 2 {
		t.Fatalf("%d edges into exit, want >= 2", n)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	_, g := build(t, `
func f(x int) int {
	s := 0
	switch x {
	case 0:
		s = 1
		fallthrough
	case 1:
		s = 2
	default:
		s = 3
	}
	return s
}`, "f")
	if len(g.Loops()) != 0 {
		t.Fatalf("switch has loops")
	}
	// Find the clause block holding s = 1: its successor must hold s = 2
	// (the fallthrough edge), not the join.
	var c0, c1 *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if bl, ok := as.Rhs[0].(*ast.BasicLit); ok {
					switch bl.Value {
					case "1":
						c0 = b
					case "2":
						c1 = b
					}
				}
			}
		}
	}
	if c0 == nil || c1 == nil {
		t.Fatalf("clause blocks not found")
	}
	found := false
	for _, s := range c0.Succs {
		if s == c1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge from case 0 to case 1 missing")
	}
}

func TestSelect(t *testing.T) {
	_, g := build(t, `
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
		return 0
	}
}`, "f")
	if len(g.Loops()) != 0 {
		t.Fatalf("select has loops")
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("select head has %d succs, want 2", len(g.Entry.Succs))
	}
}

func TestPanicBlock(t *testing.T) {
	_, g := build(t, `
func f(c bool) {
	if c {
		panic("boom")
	}
	println("ok")
}`, "f")
	found := false
	for _, b := range g.Blocks {
		if b.Panic {
			found = true
			if len(b.Succs) == 0 || b.Succs[0] != g.Exit {
				t.Fatalf("panic block does not lead to exit")
			}
		}
	}
	if !found {
		t.Fatalf("no panic block marked")
	}
}

func TestContinueTargetsPost(t *testing.T) {
	_, g := build(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		s += i
	}
	return s
}`, "f")
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	// The post block (i++) must have at least two preds: the body end
	// and the continue.
	var post *Block
	for b := range loops[0].Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.IncDecStmt); ok {
				post = b
			}
		}
	}
	if post == nil {
		t.Fatalf("post block not found")
	}
	if len(post.Preds) < 2 {
		t.Fatalf("post block has %d preds, want >= 2 (fallthrough + continue)", len(post.Preds))
	}
}

func TestLabeledBreak(t *testing.T) {
	_, g := build(t, `
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				break outer
			}
			s++
		}
	}
	return s
}`, "f")
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	// break outer: an inner-loop block has a successor outside BOTH loops.
	outer, inner := loops[0], loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	escapes := false
	for b := range inner.Blocks {
		for _, s := range b.Succs {
			if !inner.Blocks[s] && !outer.Blocks[s] {
				escapes = true
			}
		}
	}
	if !escapes {
		t.Fatalf("break outer does not leave both loops")
	}
}

func TestRPOVisitsAllReachable(t *testing.T) {
	fset, g := build(t, `
func f(c bool) int {
	for i := 0; i < 10; i++ {
		if c {
			return i
		}
	}
	return -1
}`, "f")
	_ = fset
	rpo := g.ReversePostorder()
	seen := make(map[*Block]bool, len(rpo))
	for _, b := range rpo {
		if seen[b] {
			t.Fatalf("block %d visited twice", b.Index)
		}
		seen[b] = true
	}
	if !seen[g.Exit] {
		t.Fatalf("RPO misses exit")
	}
	_ = describe
}
