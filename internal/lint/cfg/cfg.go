// Package cfg builds per-function control-flow graphs over go/ast for
// the COBRA lint suite: basic blocks of statements, natural-loop
// detection, and a reverse-postorder walk. It is the shared dataflow
// substrate under the path-sensitive analyzers (iterclose's
// close-on-every-path check, lockguard's must-hold analysis, hotalloc's
// per-iteration allocation detection) — a self-contained miniature of
// golang.org/x/tools/go/cfg, kept stdlib-only like the rest of
// internal/lint.
//
// The graph is intraprocedural and syntactic: no call graph, no
// panic/recover modeling beyond "a panic call terminates the block into
// Exit". Defer statements appear as ordinary nodes in their block AND
// are collected in Graph.Defers, because deferred calls run at every
// function exit — analyzers that care (lockguard ignores deferred
// Unlocks for the kill set, iterclose accepts a deferred Close for
// every path) consult the collected list instead of block order.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: a maximal sequence of statements (and
// branch-condition expressions) with a single entry at the top.
// Nodes holds the statements in execution order; conditions of if/for
// statements appear as bare ast.Expr nodes, and a range statement's
// per-iteration assignment is represented by the *ast.RangeStmt itself
// sitting in the loop-head block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Panic marks a block terminated by a call to panic: its edge to
	// Exit is a crash, not a return, and path-sensitive analyzers may
	// choose not to report resource leaks along it.
	Panic bool
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block // pseudo-block: every return (and the fall-off end) leads here
	// Blocks lists every block in creation order, Entry first, Exit
	// last. Blocks unreachable from Entry (code after return) are kept.
	Blocks []*Block

	// Defers collects every defer statement in the body, in source
	// order. Deferred calls run at each exit from the function.
	Defers []*ast.DeferStmt

	thenBlocks  map[*ast.IfStmt]*Block
	structHeads map[*Block]ast.Stmt // loop-head block -> for/range stmt
}

// ThenBlock returns the entry block of an if statement's then-branch —
// the edge analyzers skip when the if is a guard whose then-branch
// handles a failure (iterclose's `if err := it.Open(); err != nil`
// shape) — or nil if the statement is not in this graph.
func (g *Graph) ThenBlock(s *ast.IfStmt) *Block { return g.thenBlocks[s] }

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g: &Graph{
			thenBlocks:  make(map[*ast.IfStmt]*Block),
			structHeads: make(map[*Block]ast.Stmt),
		},
		labels:    make(map[string]*Block),
		gotoWaits: make(map[string][]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{}
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is a return.
	b.jump(b.cur, b.g.Exit)
	// Unresolved gotos (malformed source) fall through to Exit so the
	// graph stays connected.
	for _, blocks := range b.gotoWaits {
		for _, from := range blocks {
			b.jump(from, b.g.Exit)
		}
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// ctx is one enclosing breakable/continuable construct.
type ctx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type builder struct {
	g   *Graph
	cur *Block

	ctxs      []ctx
	labels    map[string]*Block   // label -> target block (for goto)
	gotoWaits map[string][]*Block // forward gotos waiting for their label

	// pendingLabel is the label of the labeled statement being built,
	// consumed by the next loop/switch so `break L`/`continue L` resolve.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being entered.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur.Panic = true
			b.jump(b.cur, b.g.Exit)
			b.cur = b.newBlock()
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cur, b.g.Exit)
		b.cur = b.newBlock()

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.g.thenBlocks[s] = then
		b.jump(cond, then)
		b.cur = then
		b.stmt(s.Body)
		afterThen := b.cur
		if s.Else != nil {
			els := b.newBlock()
			b.jump(cond, els)
			b.cur = els
			b.stmt(s.Else)
			afterElse := b.cur
			join := b.newBlock()
			b.jump(afterThen, join)
			b.jump(afterElse, join)
			b.cur = join
		} else {
			join := b.newBlock()
			b.jump(afterThen, join)
			b.jump(cond, join)
			b.cur = join
		}

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.g.structHeads[head] = s
		b.jump(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		b.jump(head, body)
		exit := b.newBlock()
		if s.Cond != nil {
			b.jump(head, exit)
		}
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.jump(post, head)
			continueTo = post
		}
		b.ctxs = append(b.ctxs, ctx{label: label, breakTo: exit, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body)
		b.jump(b.cur, continueTo)
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		// X is evaluated once, before the loop.
		b.add(s.X)
		head := b.newBlock()
		b.g.structHeads[head] = s
		// The per-iteration key/value assignment is the RangeStmt node
		// itself, living in the head.
		head.Nodes = append(head.Nodes, s)
		b.jump(b.cur, head)
		body := b.newBlock()
		exit := b.newBlock()
		b.jump(head, body)
		b.jump(head, exit)
		b.ctxs = append(b.ctxs, ctx{label: label, breakTo: exit, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.jump(b.cur, head)
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		exit := b.newBlock()
		b.ctxs = append(b.ctxs, ctx{label: label, breakTo: exit})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cb := b.newBlock()
			b.jump(sel, cb)
			b.cur = cb
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(b.cur, exit)
		}
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		if len(s.Body.List) == 0 {
			b.jump(sel, exit)
		}
		b.cur = exit

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.jump(b.cur, lb)
		b.labels[s.Label.Name] = lb
		for _, from := range b.gotoWaits[s.Label.Name] {
			b.jump(from, lb)
		}
		delete(b.gotoWaits, s.Label.Name)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findCtx(s, false); t != nil {
				b.jump(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findCtx(s, true); t != nil {
				b.jump(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			if t, ok := b.labels[s.Label.Name]; ok {
				b.jump(b.cur, t)
			} else {
				b.gotoWaits[s.Label.Name] = append(b.gotoWaits[s.Label.Name], b.cur)
			}
			b.cur = b.newBlock()
		}
		// FALLTHROUGH is handled by switchStmt.

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt:
		// straight-line nodes.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			b.add(s)
		}
	}
}

// switchStmt builds value and type switches: every case-clause block is
// a successor of the switch head (condition evaluation order is not
// modeled), fallthrough chains a clause into the next one.
func (b *builder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		clauses = s.Body.List
	}
	head := b.cur
	exit := b.newBlock()
	// Pre-create the clause blocks so fallthrough can target clause i+1.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		blocks[i] = b.newBlock()
		b.jump(head, blocks[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.jump(head, exit)
	}
	b.ctxs = append(b.ctxs, ctx{label: label, breakTo: exit})
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = blocks[i]
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			b.jump(b.cur, blocks[i+1])
		} else {
			b.jump(b.cur, exit)
		}
	}
	b.ctxs = b.ctxs[:len(b.ctxs)-1]
	b.cur = exit
}

// findCtx resolves the target of a break (continueWanted=false) or
// continue (true), honoring an optional label.
func (b *builder) findCtx(s *ast.BranchStmt, continueWanted bool) *Block {
	for i := len(b.ctxs) - 1; i >= 0; i-- {
		c := b.ctxs[i]
		if s.Label != nil && c.label != s.Label.Name {
			continue
		}
		if continueWanted {
			if c.continueTo == nil {
				continue // break-only ctx (switch/select) can't continue
			}
			return c.continueTo
		}
		return c.breakTo
	}
	return nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
