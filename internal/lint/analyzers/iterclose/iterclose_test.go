package iterclose_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/iterclose"
)

func TestIterClose(t *testing.T) {
	analysistest.Run(t, iterclose.Analyzer, "iterclosefix")
}
