// Package iterclosefix exercises the engine.Iterator lifecycle checker
// against the real engine types.
package iterclosefix

import (
	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/relation"
)

func leaks(it engine.Iterator) error {
	if err := it.Open(); err != nil { // want `it is Open\(\)'d but never Close\(\)'d in leaks`
		return err
	}
	_, _, err := it.Next()
	return err
}

func deferClose(it engine.Iterator) error {
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close()
	_, _, err := it.Next()
	return err
}

func directClose(it engine.Iterator) error {
	if err := it.Open(); err != nil {
		return err
	}
	return it.Close()
}

func handsOff(it engine.Iterator) (*relation.Relation, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	return engine.Collect("out", it) // escape: Collect owns the close
}

func returned(it engine.Iterator) (engine.Iterator, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	return it, nil
}

func justified(it engine.Iterator) {
	//cobra:iterclose probe open only; owner closes after the probe
	it.Open()
}

// wrapper is the Volcano operator shape: Open opens the input, the
// wrapper's own Close closes it, and the caller balances the pair.
type wrapper struct {
	in engine.Iterator
}

func (w *wrapper) Schema() *relation.Schema { return w.in.Schema() }

func (w *wrapper) Open() error { return w.in.Open() }

func (w *wrapper) Close() error { return w.in.Close() }

func (w *wrapper) Next() (relation.Tuple, bool, error) { return w.in.Next() }

// leakyOp opens its input but closes nothing anywhere: flagged even
// though it is a method, because no Close on the receiver closes the
// field.
type leakyOp struct {
	in engine.Iterator
}

func (l *leakyOp) Open() error { // no matching Close in this type
	return l.in.Open() // want `l\.in is Open\(\)'d but never Close\(\)'d in Open`
}

func (l *leakyOp) Next() (relation.Tuple, bool, error) { return l.in.Next() }
