// Package iterclosefix exercises the engine.Iterator lifecycle checker
// against the real engine types.
package iterclosefix

import (
	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/relation"
)

func leaks(it engine.Iterator) error {
	if err := it.Open(); err != nil { // want `it is Open\(\)'d but never Close\(\)'d in leaks`
		return err
	}
	_, _, err := it.Next()
	return err
}

func deferClose(it engine.Iterator) error {
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close()
	_, _, err := it.Next()
	return err
}

func directClose(it engine.Iterator) error {
	if err := it.Open(); err != nil {
		return err
	}
	return it.Close()
}

func handsOff(it engine.Iterator) (*relation.Relation, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	return engine.Collect("out", it) // escape: Collect owns the close
}

func returned(it engine.Iterator) (engine.Iterator, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	return it, nil
}

func justified(it engine.Iterator) {
	//cobra:iterclose probe open only; owner closes after the probe
	it.Open()
}

// wrapper is the Volcano operator shape: Open opens the input, the
// wrapper's own Close closes it, and the caller balances the pair.
type wrapper struct {
	in engine.Iterator
}

func (w *wrapper) Schema() *relation.Schema { return w.in.Schema() }

func (w *wrapper) Open() error { return w.in.Open() }

func (w *wrapper) Close() error { return w.in.Close() }

func (w *wrapper) Next() (relation.Tuple, bool, error) { return w.in.Next() }

// leakyOp opens its input but closes nothing anywhere: flagged even
// though it is a method, because no Close on the receiver closes the
// field.
type leakyOp struct {
	in engine.Iterator
}

func (l *leakyOp) Open() error { // no matching Close in this type
	return l.in.Open() // want `l\.in is Open\(\)'d but never Close\(\)'d in Open`
}

func (l *leakyOp) Next() (relation.Tuple, bool, error) { return l.in.Next() }

// The CFG-sensitive cases: the close exists but not on every path.

func branchLeak(it engine.Iterator, flag bool) error {
	if err := it.Open(); err != nil { // want `it is Open\(\)'d but not Close\(\)'d on every path in branchLeak`
		return err
	}
	if flag {
		return it.Close()
	}
	return nil // this path leaks
}

func branchBothClose(it engine.Iterator, flag bool) error {
	if err := it.Open(); err != nil {
		return err
	}
	if flag {
		return it.Close()
	}
	it.Close()
	return nil
}

func earlyReturnLeak(it engine.Iterator, n int) error {
	if err := it.Open(); err != nil { // want `it is Open\(\)'d but not Close\(\)'d on every path in earlyReturnLeak`
		return err
	}
	if n < 0 {
		return nil // leaks: returns before the close below
	}
	return it.Close()
}

// openCloseInLoop is balanced: each iteration closes what it opened
// before looping around or leaving.
func openCloseInLoop(its []engine.Iterator) error {
	for _, it := range its {
		if err := it.Open(); err != nil {
			return err
		}
		if err := it.Close(); err != nil {
			return err
		}
	}
	return nil
}

// loopBreakLeak opens inside the loop but a break path skips the close.
func loopBreakLeak(its []engine.Iterator, stop bool) error {
	for _, it := range its {
		if err := it.Open(); err != nil { // want `it is Open\(\)'d but not Close\(\)'d on every path in loopBreakLeak`
			return err
		}
		if stop {
			break // leaks the just-opened iterator
		}
		if err := it.Close(); err != nil {
			return err
		}
	}
	return nil
}

// panicPathOK: a path that ends in panic is a crash, not a leak.
func panicPathOK(it engine.Iterator, bad bool) error {
	if err := it.Open(); err != nil {
		return err
	}
	if bad {
		panic("corrupt plan")
	}
	return it.Close()
}

// condOpenGuard: the `if e.Open() != nil` shape — the then-branch is the
// failure path and needs no close.
func condOpenGuard(it engine.Iterator) error {
	if it.Open() != nil {
		return nil
	}
	return it.Close()
}

// unrelatedGuard: the nil check after the open tests something else, so
// its then-branch return is NOT an exempt failure path.
func unrelatedGuard(it engine.Iterator, other error) error {
	if err := it.Open(); err != nil { // want `it is Open\(\)'d but not Close\(\)'d on every path in unrelatedGuard`
		return err
	}
	if other != nil {
		return other // leaks
	}
	return it.Close()
}
