// Package iterclose checks the engine.Iterator lifecycle: an iterator
// that a function Opens must be visibly Closed. Leaked open iterators
// were the bug class fixed repeatedly in PRs 2 and 4 (tracking-iterator
// leak tests exist precisely because Sort/Distinct/Union once dropped
// their inputs on error paths).
//
// The check is per-function and intentionally syntactic: for every
// `E.Open()` where E's static type satisfies engine.Iterator, the
// enclosing function must either call (or defer) `E.Close()`, hand E to
// something else (pass it, return it, store it), or be a method on an
// operator whose own Close method closes the same field — the standard
// Volcano wrapper shape, where Filter.Open opens f.in and Filter.Close
// closes it. Anything else is a leak on every path, not just the error
// ones, and is reported. Sites with a deliberate different lifecycle
// carry //cobra:iterclose <reason>.
package iterclose

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
)

// Analyzer is the iterator-lifecycle checker.
var Analyzer = &analysis.Analyzer{
	Name:      "iterclose",
	Directive: "iterclose",
	Doc: "engine.Iterator Open without a reachable Close\n\n" +
		"Every E.Open() on an engine.Iterator must be paired in the same\n" +
		"function with E.Close() (direct or deferred), an escape of E, or —\n" +
		"for Volcano operator methods — a Close method on the receiver that\n" +
		"closes the same field. Suppress with //cobra:iterclose <reason>.",
	Run: run,
}

const iteratorPkg = analysis.ModulePath + "/internal/engine"

func run(pass *analysis.Pass) error {
	iface := analysis.FindInterface(pass.Pkg, iteratorPkg, "Iterator")
	if iface == nil {
		return nil // package does not touch the engine
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, iface, fd)
		}
	}
	return nil
}

// openSite is one E.Open() call, keyed by the printed receiver
// expression so that `s.in.Open()` and `s.in.Close()` pair up.
type openSite struct {
	key string
	pos ast.Node
}

func checkFunc(pass *analysis.Pass, iface *types.Interface, fd *ast.FuncDecl) {
	if analysis.IsTestFile(pass.Fset, fd.Pos()) {
		return
	}
	var opens []openSite
	closed := map[string]bool{}
	escaped := map[string]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && len(x.Args) == 0 {
				if isIterator(pass, iface, sel.X) {
					key := types.ExprString(sel.X)
					switch sel.Sel.Name {
					case "Open":
						opens = append(opens, openSite{key: key, pos: x})
					case "Close":
						closed[key] = true
					}
				}
			}
			// Any iterator passed as an argument hands off its
			// lifecycle (Collect/drain-style helpers close what they
			// are given).
			for _, arg := range x.Args {
				if isIterator(pass, iface, arg) {
					escaped[types.ExprString(arg)] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isIterator(pass, iface, r) {
					escaped[types.ExprString(r)] = true
				}
			}
		case *ast.AssignStmt:
			// Storing the iterator somewhere (a field, a slice slot,
			// another variable) transfers ownership out of this
			// function's view.
			for _, r := range x.Rhs {
				if isIterator(pass, iface, r) {
					escaped[types.ExprString(r)] = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isIterator(pass, iface, v) {
					escaped[types.ExprString(v)] = true
				}
			}
		}
		return true
	})

	for _, o := range opens {
		if closed[o.key] || escaped[o.key] {
			continue
		}
		if closedByReceiverClose(pass, iface, fd, o.key) {
			continue
		}
		if pass.Suppressed(o.pos.Pos()) {
			continue
		}
		pass.Reportf(o.pos.Pos(),
			"%s is Open()'d but never Close()'d in %s (and does not escape): engine iterators must be closed on every path; see //cobra:iterclose for deliberate lifecycles",
			o.key, fd.Name.Name)
	}
}

// isIterator reports whether e's static type satisfies engine.Iterator.
func isIterator(pass *analysis.Pass, iface *types.Interface, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && analysis.ImplementsOrIs(t, iface)
}

// closedByReceiverClose handles the Volcano operator shape: fd is a
// method whose receiver r has key rooted at it (e.g. "f.in"), and the
// receiver's type declares a Close method, in this package, that closes
// the same path ("f.in.Close()" modulo the receiver name). The open in
// fd is then balanced by the operator's own Close, invoked by whoever
// opened the operator.
func closedByReceiverClose(pass *analysis.Pass, iface *types.Interface, fd *ast.FuncDecl, key string) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "" || !strings.HasPrefix(key, recvName+".") {
		return false
	}
	path := strings.TrimPrefix(key, recvName) // ".in", ".l", ...
	recvType := namedRecvType(pass, fd)
	if recvType == nil {
		return false
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			md, ok := decl.(*ast.FuncDecl)
			if !ok || md.Body == nil || md.Name.Name != "Close" || md.Recv == nil {
				continue
			}
			if namedRecvType(pass, md) != recvType || len(md.Recv.List[0].Names) == 0 {
				continue
			}
			closeRecv := md.Recv.List[0].Names[0].Name
			want := closeRecv + path
			found := false
			ast.Inspect(md.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "Close" && types.ExprString(sel.X) == want {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// namedRecvType resolves the defining *types.Named of a method's
// receiver, ignoring pointers.
func namedRecvType(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
