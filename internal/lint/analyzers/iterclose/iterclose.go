// Package iterclose checks the engine.Iterator lifecycle: an iterator
// that a function Opens must be visibly Closed on every control-flow
// path. Leaked open iterators were the bug class fixed repeatedly in
// PRs 2 and 4 (tracking-iterator leak tests exist precisely because
// Sort/Distinct/Union once dropped their inputs on error paths).
//
// The check runs on the function's control-flow graph (internal/lint/cfg):
// for every `E.Open()` where E's static type satisfies engine.Iterator,
// every path from the open to the function's exit must pass a
// `E.Close()` or an escape of E (passing it, returning it, storing it —
// ownership hand-off), unless a `defer E.Close()` is registered (defers
// run at every exit) or the function is a method on an operator whose
// own Close method closes the same field — the standard Volcano wrapper
// shape, where Filter.Open opens f.in and Filter.Close closes it.
//
// The open-guard failure path is exempt: in
//
//	if err := e.Open(); err != nil { return err }
//
// the then-branch runs only when the open itself failed, so nothing is
// leaked along it. Paths that end in panic are likewise not reported.
// Sites with a deliberate different lifecycle carry
// //cobra:iterclose <reason>.
package iterclose

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
	"github.com/cobra-prov/cobra/internal/lint/cfg"
)

// Analyzer is the iterator-lifecycle checker.
var Analyzer = &analysis.Analyzer{
	Name:      "iterclose",
	Directive: "iterclose",
	Doc: "engine.Iterator Open without a Close on every path\n\n" +
		"Every E.Open() on an engine.Iterator must be balanced on every\n" +
		"control-flow path by E.Close() (direct or deferred), an escape of E,\n" +
		"or — for Volcano operator methods — a Close method on the receiver\n" +
		"that closes the same field. Suppress with //cobra:iterclose <reason>.",
	Run: run,
}

const iteratorPkg = analysis.ModulePath + "/internal/engine"

func run(pass *analysis.Pass) error {
	iface := analysis.FindInterface(pass.Pkg, iteratorPkg, "Iterator")
	if iface == nil {
		return nil // package does not touch the engine
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, iface, fd)
		}
	}
	return nil
}

// stmtFacts summarizes one CFG node for one iterator key: whether the
// node closes or escapes the key. Opens carry their own site records.
type stmtFacts struct {
	closes  map[string]bool
	escapes map[string]bool
}

// openSite is one E.Open() call.
type openSite struct {
	key   string
	call  *ast.CallExpr
	block *cfg.Block
	idx   int         // index of the node within block.Nodes
	guard *ast.IfStmt // error-check if whose then-branch is the failure path
}

func checkFunc(pass *analysis.Pass, iface *types.Interface, fd *ast.FuncDecl) {
	if analysis.IsTestFile(pass.Fset, fd.Pos()) {
		return
	}
	g := cfg.New(fd.Body)

	// Map cond expressions back to their if statements, for open-guard
	// recognition.
	condIf := make(map[ast.Expr]*ast.IfStmt)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			condIf[ifs.Cond] = ifs
		}
		return true
	})

	// Gather per-node facts and open sites.
	var opens []openSite
	facts := make(map[ast.Node]*stmtFacts)
	anyClose := map[string]bool{}
	anyEscape := map[string]bool{}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			f := factsOf(pass, iface, n)
			if f != nil {
				facts[n] = f
				for k := range f.closes {
					anyClose[k] = true
				}
				for k := range f.escapes {
					anyEscape[k] = true
				}
			}
			for _, o := range openCalls(pass, iface, n) {
				o.block, o.idx = b, i
				o.guard = guardOf(condIf, n, b, i)
				opens = append(opens, o)
			}
		}
	}
	if len(opens) == 0 {
		return
	}

	// Deferred closes cover every exit.
	deferClosed := map[string]bool{}
	for _, d := range g.Defers {
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" && len(d.Call.Args) == 0 {
			if isIterator(pass, iface, sel.X) {
				deferClosed[types.ExprString(sel.X)] = true
			}
		}
	}

	for _, o := range opens {
		if deferClosed[o.key] {
			continue
		}
		if closedByReceiverClose(pass, iface, fd, o.key) {
			continue
		}
		if leaks(g, facts, o) {
			if pass.Suppressed(o.call.Pos()) {
				continue
			}
			if !anyClose[o.key] && !anyEscape[o.key] {
				pass.Reportf(o.call.Pos(),
					"%s is Open()'d but never Close()'d in %s (and does not escape): engine iterators must be closed on every path; see //cobra:iterclose for deliberate lifecycles",
					o.key, fd.Name.Name)
			} else {
				pass.Reportf(o.call.Pos(),
					"%s is Open()'d but not Close()'d on every path in %s: a path reaches return without %s.Close() or an escape; see //cobra:iterclose for deliberate lifecycles",
					o.key, fd.Name.Name, o.key)
			}
		}
	}
}

// leaks reports whether some path from the open site reaches the
// function exit without closing or escaping the key. The open-guard's
// then-branch (the open-failed path) and panic exits are not counted.
func leaks(g *cfg.Graph, facts map[ast.Node]*stmtFacts, o openSite) bool {
	var failure *cfg.Block
	if o.guard != nil {
		failure = g.ThenBlock(o.guard)
	}
	visited := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block, from int) bool
	walk = func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			if f := facts[b.Nodes[i]]; f != nil && (f.closes[o.key] || f.escapes[o.key]) {
				return false // this path is balanced
			}
		}
		if b == g.Exit {
			return true
		}
		if b.Panic {
			return false // crash, not a leak
		}
		leak := false
		for _, s := range b.Succs {
			if s == failure {
				continue // open failed along this edge; nothing to close
			}
			if s == g.Exit {
				leak = true
				continue
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				leak = true
			}
		}
		return leak
	}
	return walk(o.block, o.idx+1)
}

// inspectNode visits n like ast.Inspect, except that a *ast.RangeStmt
// block node (the cfg loop-head representation of the per-iteration
// assignment) contributes only its range expression: the loop body's
// statements live in their own blocks and must not be double-counted.
func inspectNode(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		ast.Inspect(r.X, fn)
		return
	}
	ast.Inspect(n, fn)
}

// openCalls returns the E.Open() sites within node n.
func openCalls(pass *analysis.Pass, iface *types.Interface, n ast.Node) []openSite {
	var out []openSite
	inspectNode(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Open" && len(call.Args) == 0 {
			if isIterator(pass, iface, sel.X) {
				out = append(out, openSite{key: types.ExprString(sel.X), call: call})
			}
		}
		return true
	})
	return out
}

// factsOf scans one CFG node for closes and escapes of iterator keys.
func factsOf(pass *analysis.Pass, iface *types.Interface, n ast.Node) *stmtFacts {
	f := &stmtFacts{closes: map[string]bool{}, escapes: map[string]bool{}}
	inspectNode(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && len(x.Args) == 0 && sel.Sel.Name == "Close" {
				if isIterator(pass, iface, sel.X) {
					f.closes[types.ExprString(sel.X)] = true
				}
			}
			// Any iterator passed as an argument hands off its lifecycle
			// (Collect/drain-style helpers close what they are given).
			for _, arg := range x.Args {
				if isIterator(pass, iface, arg) {
					f.escapes[types.ExprString(arg)] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isIterator(pass, iface, r) {
					f.escapes[types.ExprString(r)] = true
				}
			}
		case *ast.AssignStmt:
			// Storing the iterator somewhere (a field, a slice slot,
			// another variable) transfers ownership out of this
			// function's view.
			for _, r := range x.Rhs {
				if isIterator(pass, iface, r) {
					f.escapes[types.ExprString(r)] = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isIterator(pass, iface, v) {
					f.escapes[types.ExprString(v)] = true
				}
			}
		}
		return true
	})
	if len(f.closes) == 0 && len(f.escapes) == 0 {
		return nil
	}
	return f
}

// guardOf recognizes the open-guard shape around the node holding an
// Open call, returning the if statement whose then-branch is the
// open-failure path. Two shapes:
//
//	if err := e.Open(); err != nil { ... }   (n is the init; cond follows)
//	err := e.Open(); if err != nil { ... }   (n is the assign; cond follows)
//	if e.Open() != nil { ... }               (n is the cond itself)
//
// The tested identifier must be one the open's statement assigns, so an
// unrelated nil check after the open does not exempt its then-branch.
func guardOf(condIf map[ast.Expr]*ast.IfStmt, n ast.Node, b *cfg.Block, idx int) *ast.IfStmt {
	// The open call sits inside the cond itself: `if e.Open() != nil`.
	if cond, ok := n.(ast.Expr); ok {
		if ifs := condIf[cond]; ifs != nil && errNilOperand(cond) != nil {
			return ifs
		}
	}
	// The open's statement assigns an error that the next node — the
	// cond of an if, per the cfg lowering of `if init; cond` and of a
	// statement directly followed by an if — tests against nil.
	as, ok := n.(*ast.AssignStmt)
	if !ok || idx+1 >= len(b.Nodes) {
		return nil
	}
	cond, ok := b.Nodes[idx+1].(ast.Expr)
	if !ok {
		return nil
	}
	ifs := condIf[cond]
	if ifs == nil {
		return nil
	}
	tested := errNilOperand(cond)
	if tested == nil {
		return nil
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == tested.Name {
			return ifs
		}
	}
	return nil
}

// errNilOperand returns the identifier of an `id != nil` (or
// `nil != id`) condition, or nil. For `e.Open() != nil` it returns a
// synthetic non-nil marker ident so callers can treat the cond itself
// as the guard.
func errNilOperand(cond ast.Expr) *ast.Ident {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return nil
	}
	x, y := be.X, be.Y
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil
	}
	if id, ok := x.(*ast.Ident); ok {
		return id
	}
	if _, ok := x.(*ast.CallExpr); ok {
		return &ast.Ident{Name: ""} // the call itself is tested
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isIterator reports whether e's static type satisfies engine.Iterator.
func isIterator(pass *analysis.Pass, iface *types.Interface, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && analysis.ImplementsOrIs(t, iface)
}

// closedByReceiverClose handles the Volcano operator shape: fd is a
// method whose receiver r has key rooted at it (e.g. "f.in"), and the
// receiver's type declares a Close method, in this package, that closes
// the same path ("f.in.Close()" modulo the receiver name). The open in
// fd is then balanced by the operator's own Close, invoked by whoever
// opened the operator.
func closedByReceiverClose(pass *analysis.Pass, iface *types.Interface, fd *ast.FuncDecl, key string) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "" || !strings.HasPrefix(key, recvName+".") {
		return false
	}
	path := strings.TrimPrefix(key, recvName) // ".in", ".l", ...
	recvType := namedRecvType(pass, fd)
	if recvType == nil {
		return false
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			md, ok := decl.(*ast.FuncDecl)
			if !ok || md.Body == nil || md.Name.Name != "Close" || md.Recv == nil {
				continue
			}
			if namedRecvType(pass, md) != recvType || len(md.Recv.List[0].Names) == 0 {
				continue
			}
			closeRecv := md.Recv.List[0].Names[0].Name
			want := closeRecv + path
			found := false
			ast.Inspect(md.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "Close" && types.ExprString(sel.X) == want {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// namedRecvType resolves the defining *types.Named of a method's
// receiver, ignoring pointers.
func namedRecvType(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
