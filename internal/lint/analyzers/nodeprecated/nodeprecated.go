// Package nodeprecated forbids references to deprecated entry points
// from inside the module. A "Deprecated:" doc marker is a promise to
// external callers that the old surface keeps working; it is not a
// license for the module's own code to keep using it. Internal callers
// are exactly the ones we can migrate immediately — the four *Streamed
// facades in cobra.go, for example, exist only for published callers,
// and every internal use should go through Dataset instead.
//
// The analyzer resolves every identifier a package uses. If the
// referenced object — function, method, type, variable, or constant —
// is declared in this module with a doc comment paragraph starting
// "Deprecated:", the use is reported. Cross-package declarations are
// handled by re-parsing the declaring file (export data carries
// positions but not doc comments). Uses from inside a declaration that
// is itself deprecated are exempt, so a deprecated facade may delegate
// to another without churn. A use that must stay (for example a test
// helper pinning the deprecated surface itself, in a non-test file)
// carries //cobra:nodeprecated <reason>.
package nodeprecated

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
)

// Analyzer is the deprecated-reference checker.
var Analyzer = &analysis.Analyzer{
	Name:      "nodeprecated",
	Directive: "nodeprecated",
	Doc: "reference to a deprecated module entry point\n\n" +
		"No non-test code in the module may call or mention a declaration\n" +
		"whose doc comment carries a Deprecated: marker. Migrate to the\n" +
		"replacement the marker names, or justify the reference with\n" +
		"//cobra:nodeprecated <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:   pass,
		files:  make(map[string]*ast.File),
		status: make(map[types.Object]string),
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			// A deprecated declaration may reference other deprecated
			// declarations: migrating it is pointless by definition.
			if doc := declDoc(decl); deprecationNote(doc) != "" {
				continue
			}
			c.checkDecl(decl)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass

	// files caches re-parsed declaring files of other packages, keyed
	// by filename; status caches the deprecation note per object ("" =
	// not deprecated).
	files  map[string]*ast.File
	status map[types.Object]string
}

func (c *checker) checkDecl(decl ast.Decl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		note := c.deprecated(obj)
		if note == "" {
			return true
		}
		if c.pass.Suppressed(id.Pos()) {
			return true
		}
		c.pass.Reportf(id.Pos(), "use of deprecated %s: %s", obj.Name(), note)
		return true
	})
}

// deprecated returns the deprecation note of obj's declaration, or ""
// if the object is not deprecated or not declared in this module.
func (c *checker) deprecated(obj types.Object) string {
	switch o := obj.(type) {
	case *types.Func, *types.TypeName, *types.Const:
	case *types.Var:
		if o.IsField() {
			// Field names are matched against top-level declarations by
			// name; a field shadowing a deprecated package-level name
			// would false-positive. Deprecation markers on fields are
			// out of scope.
			return ""
		}
	default:
		return ""
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	if pkg != c.pass.Pkg && !strings.HasPrefix(pkg.Path(), analysis.ModulePath) {
		// Only module-declared surface is in scope: the module cannot
		// migrate the standard library's deprecations on its own
		// schedule, and flagging them here would just accumulate
		// directives.
		return ""
	}
	if obj.Parent() != nil && obj.Parent() != pkg.Scope() {
		// Locals and function parameters cannot carry doc markers; only
		// package-scope declarations and methods/fields matter. Methods
		// have nil Parent, so they fall through.
		return ""
	}
	if note, ok := c.status[obj]; ok {
		return note
	}
	note := c.lookup(obj)
	c.status[obj] = note
	return note
}

// lookup finds obj's declaring file and reads the doc comment of the
// top-level declaration that defines it.
func (c *checker) lookup(obj types.Object) string {
	pos := c.pass.Fset.Position(obj.Pos())
	if pos.Filename == "" {
		return ""
	}
	f, ok := c.files[pos.Filename]
	if !ok {
		parsed, err := parser.ParseFile(token.NewFileSet(), pos.Filename, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			parsed = nil // unreadable export-data position: not checkable
		}
		f = parsed
		c.files[pos.Filename] = f
	}
	if f == nil {
		return ""
	}
	for _, decl := range f.Decls {
		if note := matchDecl(decl, obj); note != "" {
			return note
		}
	}
	return ""
}

// matchDecl returns the deprecation note if decl declares obj.
func matchDecl(decl ast.Decl, obj types.Object) string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.Name != obj.Name() {
			return ""
		}
		fn, ok := obj.(*types.Func)
		if !ok || !receiverMatches(d, fn) {
			return ""
		}
		return deprecationNote(d.Doc)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.Name == obj.Name() {
					if note := deprecationNote(s.Doc); note != "" {
						return note
					}
					return deprecationNote(d.Doc)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.Name == obj.Name() {
						if note := deprecationNote(s.Doc); note != "" {
							return note
						}
						return deprecationNote(d.Doc)
					}
				}
			}
		}
	}
	return ""
}

// receiverMatches reports whether d's receiver shape agrees with fn's:
// both plain functions, or methods on the same-named type.
func receiverMatches(d *ast.FuncDecl, fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if d.Recv == nil {
		return sig.Recv() == nil
	}
	if sig.Recv() == nil || len(d.Recv.List) != 1 {
		return false
	}
	return recvTypeName(d.Recv.List[0].Type) == namedRecv(sig.Recv().Type())
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}

func namedRecv(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func declDoc(decl ast.Decl) *ast.CommentGroup {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Doc
	case *ast.GenDecl:
		return d.Doc
	}
	return nil
}

// deprecationNote extracts the text of a "Deprecated:" paragraph from a
// doc comment, first line only, or "" if the comment has none.
func deprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}
