package nodeprecated_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/nodeprecated"
)

func TestNoDeprecated(t *testing.T) {
	analysistest.Run(t, nodeprecated.Analyzer, "nodepfix")
}
