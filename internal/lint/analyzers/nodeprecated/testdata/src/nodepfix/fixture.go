// Package nodepfix exercises the deprecated-reference checker against
// both same-package declarations and the real deprecated facades in the
// module root.
package nodepfix

import cobra "github.com/cobra-prov/cobra"

// OldSum adds the slow way.
//
// Deprecated: use NewSum.
func OldSum(xs []int) int {
	n := 0
	for i := range xs {
		n += xs[i]
	}
	return n
}

// NewSum is the replacement.
func NewSum(xs []int) int {
	n := 0
	for i := range xs {
		n += xs[i]
	}
	return n
}

// oldTable is kept for readers of v1 output.
//
// Deprecated: use the schema registry.
var oldTable = map[string]int{}

// legacyShim wraps OldSum for published callers.
//
// Deprecated: call NewSum directly. A deprecated facade may delegate to
// other deprecated surface without being flagged.
func legacyShim(xs []int) int {
	_ = oldTable
	return OldSum(xs)
}

func caller(xs []int) int {
	return OldSum(xs) // want `use of deprecated OldSum: use NewSum\.`
}

func tableUser() int {
	return len(oldTable) // want `use of deprecated oldTable: use the schema registry\.`
}

func cleanCaller(xs []int) int {
	_ = legacyShim // want `use of deprecated legacyShim: call NewSum directly\.`
	return NewSum(xs)
}

// crossPackage references one of the real deprecated facades in
// cobra.go: deprecation must be visible through export data.
func crossPackage() error {
	_, err := cobra.CompressStreamed(nil, nil, 2, cobra.Options{}) // want `use of deprecated CompressStreamed`
	return err
}

func justified(xs []int) int {
	//cobra:nodeprecated pinning v1 behavior until the migration window closes
	return OldSum(xs)
}
