// Package tool is a ctxflow fixture for a binary: a main package owns
// its root context.
package tool

import "context"

func root() context.Context {
	return context.Background()
}
