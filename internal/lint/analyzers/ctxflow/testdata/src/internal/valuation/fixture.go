// Package valuation is a ctxflow fixture standing in for a library
// package: root contexts must come from callers.
package valuation

import "context"

func mintsRoot() context.Context {
	return context.Background() // want `context\.Background\(\) in library package internal/valuation`
}

func mintsTODO() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library package internal/valuation`
}

func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

func justified() context.Context {
	//cobra:ctx detached janitor lifecycle, canceled by Close
	return context.Background()
}
