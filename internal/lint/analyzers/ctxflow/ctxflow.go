// Package ctxflow forbids minting root contexts inside library code.
// PR 6's cancellation design threads a caller's context through every
// Dataset solve; a context.Background()/TODO() buried in a library
// package detaches that subtree from cancellation, so a canceled
// request would keep burning workers. Root contexts belong to binaries
// (cmd/*, examples/*) and to the few deliberate lifecycle roots, which
// carry //cobra:ctx <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
)

// Analyzer is the context-threading checker.
var Analyzer = &analysis.Analyzer{
	Name:      "ctxflow",
	Directive: "ctx",
	Doc: "context.Background/TODO in library code\n\n" +
		"Library packages must accept a context from their caller instead of\n" +
		"minting a root; a hidden Background() breaks request cancellation.\n" +
		"Binaries and examples are exempt; deliberate lifecycle roots carry\n" +
		"//cobra:ctx <reason>.",
	Run: run,
}

// libraryPackage reports whether the module-relative package path is
// library code: the root cobra package, serve, and internal/* except
// the experiment harness (a measurement binary in spirit) and the lint
// tooling itself.
func libraryPackage(pkgPath string) bool {
	rel := analysis.RelPkgPath(pkgPath)
	switch {
	case strings.HasPrefix(rel, "cmd/") || rel == "cmd":
		return false
	case strings.HasPrefix(rel, "examples/") || rel == "examples":
		return false
	case rel == "internal/experiments" || strings.HasPrefix(rel, "internal/experiments/"):
		return false
	case rel == "internal/lint" || strings.HasPrefix(rel, "internal/lint/"):
		return false
	}
	return true
}

func run(pass *analysis.Pass) error {
	if !libraryPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Background" && name != "TODO" {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.ObjectOf(pkgIdent).(*types.PkgName)
			if !ok || pn.Imported().Path() != "context" {
				return true
			}
			if analysis.IsTestFile(pass.Fset, call.Pos()) {
				return true
			}
			if pass.Suppressed(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() in library package %s: thread the caller's context instead, or justify a deliberate lifecycle root with //cobra:ctx <reason>",
				name, analysis.RelPkgPath(pass.Pkg.Path()))
			return true
		})
	}
	return nil
}
