package ctxflow_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "internal/valuation", "cmd/tool")
}
