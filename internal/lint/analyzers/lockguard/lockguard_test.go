package lockguard_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/lockguard"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, lockguard.Analyzer, "lockguardfix")
}
