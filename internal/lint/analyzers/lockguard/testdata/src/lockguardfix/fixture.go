// Package lockguardfix exercises the annotated lock-discipline checker.
package lockguardfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type table struct {
	rw sync.RWMutex
	// rows is the resident page index.
	// guarded by rw
	rows map[string]int
}

func (c *counter) bad() int {
	return c.n // want `c\.n is read without c\.mu held on every path from function entry`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodInline() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `c\.n is written without c\.mu held on every path from function entry`
}

// conditionalLock: the lock is taken on only one path, so at the join it
// does not count.
func (c *counter) conditionalLock(flag bool) int {
	if flag {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want `c\.n is read without c\.mu held on every path from function entry`
}

// bumpLocked asserts the caller holds c.mu: the Locked suffix seeds the
// entry state.
func (c *counter) bumpLocked() {
	c.n++
}

func (t *table) readHalf(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

func (t *table) writeUnderRead(k string) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.rows[k] = 1 // want `t\.rows is written with only t\.rw read-held; writes require t\.rw\.Lock\(\)`
}

func (t *table) writeHalf(k string) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.rows[k] = 1
}

// freshConstruction: a value not yet shared needs no lock to initialize.
func newTable() *table {
	t := &table{}
	t.rows = map[string]int{}
	return t
}

// addressTaken: handing out a pointer to the guarded field is a write.
func (c *counter) addressTaken() *int {
	return &c.n // want `c\.n is written without c\.mu held on every path from function entry`
}

func (c *counter) justified() int {
	//cobra:lockguard snapshot read during shutdown; no other goroutine is live
	return c.n
}

// badAnnotationMissing declares a guard that does not exist.
type badAnnotationMissing struct {
	v int // guarded by lock // want `field is annotated .guarded by lock. but the struct has no field lock`
}

// badAnnotationKind declares a guard that is not a mutex.
type badAnnotationKind struct {
	lock int
	v    int // guarded by lock // want `field is annotated .guarded by lock. but lock is not a sync\.Mutex or sync\.RWMutex`
}
