// Package lockguard checks annotated lock discipline: a struct field
// whose comment says `guarded by <mu>` may only be accessed while that
// sibling mutex is held, on every control-flow path from function
// entry. The COBRA engine is single-writer by design but its shared
// structures — the ShardedSet iteration/stat state, the serve registry,
// the Dataset memo table — are read from HTTP handlers and pool
// workers, and a forgotten lock is a data race the race detector only
// finds when a test happens to interleave. The annotation turns the
// discipline into a compile-time-checkable contract.
//
// The analysis runs forward over the function's control-flow graph
// (internal/lint/cfg). x.mu.Lock() / RLock() acquire the key "x.mu";
// Unlock() / RUnlock() release it; a meet over predecessor blocks keeps
// only what is held on EVERY path, so a conditionally-taken lock does
// not count. `defer x.mu.Unlock()` releases at function exit and leaves
// the lock held for the remainder of the body. Writing a guarded field
// (assignment, ++/--, taking its address) requires the exclusive lock;
// reading requires at least the read lock.
//
// Two conventions avoid annotating the obvious:
//
//   - A function whose name ends in "Locked" asserts its caller holds
//     the receiver's annotated mutexes exclusively (the registry's
//     enforceLocked shape); the analysis starts such bodies with the
//     receiver's locks held.
//   - A struct freshly constructed in the function body (s := &T{...})
//     is not yet shared, so its guarded fields may be initialized
//     lock-free.
//
// Cross-goroutine handoff protocols the dataflow cannot see carry
// //cobra:lockguard <reason>.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
	"github.com/cobra-prov/cobra/internal/lint/cfg"
)

// Analyzer is the lock-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name:      "lockguard",
	Directive: "lockguard",
	Doc: "guarded field accessed without its annotated mutex held\n\n" +
		"A field commented `guarded by <mu>` may only be read with <mu>\n" +
		"(or its read half) held, and only be written with <mu> held\n" +
		"exclusively, on every path from function entry. Handoffs the\n" +
		"per-function dataflow cannot see are justified with\n" +
		"//cobra:lockguard <reason>.",
	Run: run,
}

// held is the lock state of one key on one path.
type held int

const (
	notHeld held = iota
	readHeld
	writeHeld
)

// guard describes one annotated field: the sibling mutex that protects
// it and whether that mutex has a read half.
type guard struct {
	muName string
	rw     bool
}

var guardedBy = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards scans the package's struct types for `guarded by <mu>`
// field annotations, reporting malformed ones (no such sibling, or the
// sibling is not a mutex) on the spot.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := make(map[*types.Var]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				muName := annotation(field)
				if muName == "" {
					continue
				}
				sibling := findField(st, muName)
				if sibling == field {
					// Prose on the mutex's own doc ("closed is guarded
					// by iterMu"): the mutex does not guard itself.
					continue
				}
				if sibling == nil {
					pass.Reportf(field.Pos(), "field is annotated `guarded by %s` but the struct has no field %s", muName, muName)
					continue
				}
				rw, isMutex := mutexKind(pass.TypesInfo.TypeOf(sibling.Type))
				if !isMutex {
					pass.Reportf(field.Pos(), "field is annotated `guarded by %s` but %s is not a sync.Mutex or sync.RWMutex", muName, muName)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[obj] = guard{muName: muName, rw: rw}
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotation extracts the mutex name from a field's doc or line
// comment.
func annotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedBy.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func findField(st *ast.StructType, name string) *ast.Field {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return field
			}
		}
	}
	return nil
}

// mutexKind reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer), and whether it has a read half.
func mutexKind(t types.Type) (rw, isMutex bool) {
	if t == nil {
		return false, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch n.Obj().Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// state maps lock keys ("x.mu") to how they are held on the current
// path.
type state map[string]held

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// meet keeps, per key, the weakest holding across both states: a lock
// not held on some predecessor path is not held at the join.
func meet(a, b state) state {
	out := make(state)
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w < v {
				v = w
			}
			if v > notHeld {
				out[k] = v
			}
		}
	}
	return out
}

func equal(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guard) {
	c := &funcChecker{
		pass:     pass,
		guards:   guards,
		fresh:    freshLocals(pass, fd.Body),
		reported: make(map[token.Pos]bool),
	}
	g := cfg.New(fd.Body)
	entry := entryState(pass, fd, guards)

	// Forward dataflow to a fixed point: in-state of a block is the meet
	// of its predecessors' out-states.
	rpo := g.ReversePostorder()
	in := make(map[*cfg.Block]state)
	out := make(map[*cfg.Block]state)
	for {
		changed := false
		for _, b := range rpo {
			var s state
			if b == g.Entry {
				s = entry.clone()
			} else {
				first := true
				for _, p := range b.Preds {
					po, ok := out[p]
					if !ok {
						continue // unvisited back edge: optimistic, refined next round
					}
					if first {
						s = po.clone()
						first = false
					} else {
						s = meet(s, po)
					}
				}
				if s == nil {
					s = make(state)
				}
			}
			in[b] = s
			o := s.clone()
			for _, n := range b.Nodes {
				c.transfer(o, n)
			}
			if prev, ok := out[b]; !ok || !equal(prev, o) {
				out[b] = o
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Checking pass: replay each block from its fixed-point in-state and
	// report guarded accesses made without the lock.
	for _, b := range rpo {
		s := in[b].clone()
		for _, n := range b.Nodes {
			c.check(s, n)
			c.transfer(s, n)
		}
	}
}

// entryState seeds the locks a function may assume: a *Locked function
// holds its receiver's annotated mutexes exclusively.
func entryState(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guard) state {
	s := make(state)
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return s
	}
	recv := fd.Recv.List[0].Names[0]
	recvType := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if recvType == nil {
		return s
	}
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	st, ok := recvType.Underlying().(*types.Struct)
	if !ok {
		return s
	}
	for i := 0; i < st.NumFields(); i++ {
		if g, ok := guards[st.Field(i)]; ok {
			s[recv.Name+"."+g.muName] = writeHeld
		}
	}
	return s
}

// freshLocals returns the objects of local variables bound to a freshly
// constructed value (&T{...}, T{...}, new(T)): not yet shared, so their
// guarded fields may be initialized without the lock.
func freshLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if isFreshExpr(pass, as.Rhs[i]) {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

type funcChecker struct {
	pass     *analysis.Pass
	guards   map[*types.Var]guard
	fresh    map[types.Object]bool
	reported map[token.Pos]bool
}

// transfer applies one block node's lock operations to s, in lexical
// order. Deferred unlocks run at exit, not here; deferred locks are
// ignored.
func (c *funcChecker) transfer(s state, n ast.Node) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	inspectShallow(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op := c.lockOp(call)
		if key == "" {
			return true
		}
		switch op {
		case "Lock":
			s[key] = writeHeld
		case "RLock":
			if s[key] < readHeld {
				s[key] = readHeld
			}
		case "Unlock", "RUnlock":
			delete(s, key)
		}
		return true
	})
}

// lockOp recognizes x.mu.Lock() and friends, returning the lock key
// "x.mu" and the operation name.
func (c *funcChecker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if _, isMutex := mutexKind(c.pass.TypesInfo.TypeOf(sel.X)); !isMutex {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// check reports guarded-field accesses in n made without the required
// lock under state s. Lock operations inside n have not yet been
// applied when an access lexically precedes them, which matches
// evaluation order closely enough for straight-line statements.
func (c *funcChecker) check(s state, n ast.Node) {
	if d, ok := n.(*ast.DeferStmt); ok {
		// A deferred call runs at exit with unknown lock state; check
		// only the immediate argument expressions, not the call body.
		for _, arg := range d.Call.Args {
			c.check(s, arg)
		}
		return
	}
	inspectShallow(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			// A closure body runs when called; its lock state is its
			// caller's problem (and directives at the call site).
			return false
		}
		sel, ok := sub.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, guarded := c.guards[obj]
		if !guarded {
			return true
		}
		if base, ok := sel.X.(*ast.Ident); ok {
			if c.fresh[c.pass.TypesInfo.Uses[base]] {
				return true
			}
		}
		key := types.ExprString(sel.X) + "." + g.muName
		need := readHeld
		verb := "read"
		if c.isWrite(sel, n) {
			need = writeHeld
			verb = "written"
		}
		have := s[key]
		if have >= need {
			return true
		}
		if c.reported[sel.Pos()] {
			return true
		}
		c.reported[sel.Pos()] = true
		if c.pass.Suppressed(sel.Pos()) {
			return true
		}
		if have == readHeld && need == writeHeld {
			c.pass.Reportf(sel.Pos(), "%s is %s with only %s read-held; writes require %s.Lock()", types.ExprString(sel), verb, key, key)
		} else {
			c.pass.Reportf(sel.Pos(), "%s is %s without %s held on every path from function entry (guarded by %s)", types.ExprString(sel), verb, key, g.muName)
		}
		return true
	})
}

// isWrite reports whether sel is the target of a mutation within stmt:
// assigned (directly or through an index/star chain rooted at it),
// ++/--'d, or address-taken.
func (c *funcChecker) isWrite(sel *ast.SelectorExpr, stmt ast.Node) bool {
	found := false
	ast.Inspect(stmt, func(m ast.Node) bool {
		if found || m == nil {
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if writeRoot(lhs) == ast.Expr(sel) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if writeRoot(m.X) == ast.Expr(sel) {
				found = true
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND && writeRoot(m.X) == ast.Expr(sel) {
				found = true
			}
		}
		return !found
	})
	return found
}

// writeRoot unwraps an lvalue chain (m[k], *p, parens) to the selector
// or identifier being mutated. Writing s.m[k] mutates the map s.m holds,
// so the chain roots at s.m.
func writeRoot(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// inspectShallow is ast.Inspect over a node, except that a RangeStmt
// encountered as the node itself contributes only its X expression (the
// loop body lives in other CFG blocks).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.X != nil {
			ast.Inspect(r.X, fn)
		}
		return
	}
	ast.Inspect(n, fn)
}
