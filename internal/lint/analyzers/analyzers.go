// Package analyzers registers the COBRA lint suite: one analyzer per
// invariant the codebase's trustworthiness argument depends on. See
// the package documentation of each sub-package for the invariant and
// its rationale, and doc.go at the module root for the overview.
package analyzers

import (
	"github.com/cobra-prov/cobra/internal/lint/analysis"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/ctxflow"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/determinism"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/hotalloc"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/iterclose"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/lockguard"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/nodeprecated"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/nogoroutine"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/nowallclock"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/sinkerr"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		nogoroutine.Analyzer,
		iterclose.Analyzer,
		sinkerr.Analyzer,
		ctxflow.Analyzer,
		nowallclock.Analyzer,
		hotalloc.Analyzer,
		lockguard.Analyzer,
		nodeprecated.Analyzer,
	}
}
