package sinkerr_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/sinkerr"
)

func TestSinkErr(t *testing.T) {
	analysistest.Run(t, sinkerr.Analyzer, "sinkerrfix")
}
