// Package sinkerr forbids discarding errors from polynomial sink
// operations. A SetSink.Add that fails mid-stream (spill I/O, shard
// overflow) and is ignored silently truncates the captured provenance —
// the answer then differs between backends, which is exactly the class
// of corruption the bit-identity guarantee exists to exclude.
//
// Any call to Add/AddSet/Seal/Finish/Close on a value satisfying
// polynomial.SetSink must consume the error: not an expression
// statement, not `_ =`, not defer/go. Suppress (e.g. in a best-effort
// cleanup path whose primary error is already captured) with
// //cobra:sinkerr <reason>.
package sinkerr

import (
	"go/ast"
	"go/types"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
)

// Analyzer is the sink-error checker.
var Analyzer = &analysis.Analyzer{
	Name:      "sinkerr",
	Directive: "sinkerr",
	Doc: "discarded error from a polynomial sink operation\n\n" +
		"Errors from Add/AddSet/Seal/Finish/Close on values satisfying\n" +
		"polynomial.SetSink must be checked; a dropped sink error means\n" +
		"silently truncated provenance. Suppress with //cobra:sinkerr <reason>.",
	Run: run,
}

const polynomialPkg = analysis.ModulePath + "/internal/polynomial"

// sinkMethods are the lifecycle methods whose errors are load-bearing.
var sinkMethods = map[string]bool{
	"Add": true, "AddSet": true, "Seal": true, "Finish": true, "Close": true,
}

func run(pass *analysis.Pass) error {
	iface := analysis.FindInterface(pass.Pkg, polynomialPkg, "SetSink")
	if iface == nil {
		return nil // package does not touch polynomial sinks
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call := sinkCall(pass, iface, s.X); call != nil {
					report(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				if call := sinkCall(pass, iface, s.Call); call != nil {
					report(pass, call, "discarded by defer")
				}
			case *ast.GoStmt:
				if call := sinkCall(pass, iface, s.Call); call != nil {
					report(pass, call, "discarded by go statement")
				}
			case *ast.AssignStmt:
				checkAssign(pass, iface, s)
			}
			return true
		})
	}
	return nil
}

// sinkCall returns e as a *ast.CallExpr if it is a call of a sink
// lifecycle method on a SetSink-satisfying receiver that returns an
// error; nil otherwise.
func sinkCall(pass *analysis.Pass, iface *types.Interface, e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sinkMethods[sel.Sel.Name] {
		return nil
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !analysis.ImplementsOrIs(recv, iface) {
		return nil
	}
	if !returnsError(pass, call) {
		return nil
	}
	return call
}

// checkAssign flags `_ = sink.Add(...)` and multi-assigns that blank
// the error position, e.g. `ss, _ := b.Finish()`.
func checkAssign(pass *analysis.Pass, iface *types.Interface, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call := sinkCall(pass, iface, s.Rhs[0])
	if call == nil {
		return
	}
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(s.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			report(pass, call, "assigned to _")
		}
	}
}

func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	if analysis.IsTestFile(pass.Fset, call.Pos()) {
		return
	}
	if pass.Suppressed(call.Pos()) {
		return
	}
	sel := call.Fun.(*ast.SelectorExpr)
	pass.Reportf(call.Pos(),
		"error from %s.%s %s: sink errors mean truncated provenance and must be handled (or justified with //cobra:sinkerr <reason>)",
		types.ExprString(sel.X), sel.Sel.Name, how)
}

func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	sig, _ := t.(*types.Signature)
	return sig
}

func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	sig := callSignature(pass, call)
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
