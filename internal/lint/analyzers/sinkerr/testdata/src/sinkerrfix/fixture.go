// Package sinkerrfix exercises the sink-error checker against the real
// polynomial sink types.
package sinkerrfix

import "github.com/cobra-prov/cobra/internal/polynomial"

func drops(s polynomial.SetSink, p polynomial.Polynomial) {
	s.Add("k", p)     // want `error from s\.Add discarded`
	_ = s.Add("k", p) // want `error from s\.Add assigned to _`
}

func checks(s polynomial.SetSink, p polynomial.Polynomial) error {
	if err := s.Add("k", p); err != nil {
		return err
	}
	return s.Add("k2", p)
}

func builder(b *polynomial.ShardBuilder, p polynomial.Polynomial) *polynomial.ShardedSet {
	b.Add("k", p)       // want `error from b\.Add discarded`
	defer b.Add("d", p) // want `error from b\.Add discarded by defer`
	ss, _ := b.Finish() // want `error from b\.Finish assigned to _`
	return ss
}

func justified(b *polynomial.ShardBuilder, p polynomial.Polynomial) {
	//cobra:sinkerr best-effort preload; the authoritative Add is re-driven by Finish
	b.Add("k", p)
}

func handled(b *polynomial.ShardBuilder, p polynomial.Polynomial) (*polynomial.ShardedSet, error) {
	if err := b.Add("k", p); err != nil {
		return nil, err
	}
	return b.Finish()
}
