package nowallclock_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, nowallclock.Analyzer, "internal/core", "internal/experiments")
}
