// Package core is a nowallclock fixture standing in for a
// deterministic-core package.
package core

import (
	_ "math/rand" // want `import of math/rand in deterministic core package internal/core`
	"time"
)

func reads() time.Time {
	return time.Now() // want `time\.Now in deterministic core package internal/core`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic core package internal/core`
}

func justified() time.Time {
	//cobra:wallclock spill-file mtime is advisory metadata, never in answers
	return time.Now()
}

func durationsAreFine(d time.Duration) time.Duration {
	return d * 2
}
