// Package experiments is a nowallclock fixture for the exempt
// measurement harness: wall-clock timing is its purpose.
package experiments

import "time"

func measure() time.Time {
	return time.Now()
}
