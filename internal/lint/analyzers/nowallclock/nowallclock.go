// Package nowallclock keeps wall-clock time and ambient randomness out
// of the deterministic core. The compression, valuation, and storage
// packages must produce bit-identical outputs for identical inputs;
// time.Now in a hot path is also measurement smeared into the library
// (timing belongs to internal/experiments callers — see the removal of
// the valuation.Program timing capture). math/rand is allowed only in
// tests (seeded), internal/experiments, and the datagen workload
// generators whose whole contract is seeded generation.
package nowallclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
)

// Analyzer is the wall-clock/randomness checker.
var Analyzer = &analysis.Analyzer{
	Name:      "nowallclock",
	Directive: "wallclock",
	Doc: "time.Now or math/rand in the deterministic core\n\n" +
		"The core packages may not read the wall clock (time.Now/Since/Until)\n" +
		"or import math/rand; both make answers run-dependent. Tests,\n" +
		"internal/experiments, and internal/datagen are exempt. Suppress a\n" +
		"deliberate use with //cobra:wallclock <reason>.",
	Run: run,
}

// watched is the deterministic core: every package on the
// capture→compress→eval path plus its storage and orchestration.
var watched = []string{
	"internal/core",
	"internal/polynomial",
	"internal/abstraction",
	"internal/valuation",
	"internal/polyio",
	"internal/provenance",
	"internal/semiring",
	"internal/engine",
	"internal/sql",
	"internal/relation",
	"internal/parallel",
}

// wallClockFuncs are the time package functions that read the clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !analysis.PathIn(pass.Pkg.Path(), watched...) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				if pass.Suppressed(imp.Pos()) {
					continue
				}
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic core package %s: ambient randomness makes answers run-dependent; justify with //cobra:wallclock <reason> if unavoidable",
					path, analysis.RelPkgPath(pass.Pkg.Path()))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.ObjectOf(pkgIdent).(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if pass.Suppressed(sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in deterministic core package %s: wall-clock reads belong in internal/experiments callers; justify with //cobra:wallclock <reason> if unavoidable",
				sel.Sel.Name, analysis.RelPkgPath(pass.Pkg.Path()))
			return true
		})
	}
	return nil
}
