// Package hotalloc flags per-iteration allocation patterns inside loops
// of the hot packages. BENCH_core.json shows the solve paths are
// allocation-bound (5.0M allocs/op on E15 streaming capture, 1.35M on
// E8 TPC-H — badly enough that adding workers makes compression
// SLOWER), so allocations that recur every loop iteration are the
// repo's dominant performance bug class; this analyzer finds them
// mechanically and keeps them from creeping back.
//
// Inside every loop detected on the function's control-flow graph
// (internal/lint/cfg — for/range and goto-formed loops alike), in the
// hot packages only, the analyzer reports:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf calls — one
//     format-machinery allocation per iteration;
//   - string concatenation (`+` / `+=` on strings) — a fresh string per
//     iteration; use a reused builder or byte scratch;
//   - []byte(string) and string([]byte) conversions — a copy per
//     iteration;
//   - append to a slice declared inside the loop without preallocated
//     capacity — the slice regrows from nil every iteration;
//   - reference allocations (&T{...}, slice/map composite literals,
//     make, new, closures) that escape the loop body — stored outside
//     the loop, appended to an accumulator, passed to a call or sent on
//     a channel — and therefore cannot be stack-allocated or reused.
//
// Allocation that is genuinely amortized (a per-shard buffer in a
// shard-at-a-time pass, a closure handed to the worker pool once per
// batch) carries //cobra:hotalloc <reason>.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
	"github.com/cobra-prov/cobra/internal/lint/cfg"
)

// Analyzer is the hot-loop allocation checker.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Directive: "hotalloc",
	Doc: "per-iteration allocation inside a hot-package loop\n\n" +
		"Loops in the hot packages (polynomial, core, abstraction, valuation,\n" +
		"sql, engine, provenance) may not allocate per iteration: no fmt\n" +
		"formatting, string concatenation, []byte<->string conversions,\n" +
		"uncapped loop-local append targets, or escaping reference\n" +
		"allocations. Suppress deliberate amortized allocation with\n" +
		"//cobra:hotalloc <reason>.",
	Run: run,
}

// HotPackages are the solve-path packages the allocation discipline
// binds and cmd/cobra-escape budgets; everything else (cmd, serve,
// experiments, datagen) may allocate freely.
var HotPackages = []string{
	"internal/polynomial",
	"internal/core",
	"internal/abstraction",
	"internal/valuation",
	"internal/sql",
	"internal/engine",
	"internal/provenance",
}

// fmtAllocFuncs are the fmt entry points that allocate per call.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathIn(pass.Pkg.Path(), HotPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if analysis.IsTestFile(pass.Fset, fd.Pos()) {
		return
	}
	g := cfg.New(fd.Body)
	loops := g.Loops()
	if len(loops) == 0 {
		return
	}
	outer := outermost(loops)
	parents := parentMap(fd.Body)
	c := &checker{
		pass:      pass,
		parents:   parents,
		reported:  make(map[token.Pos]bool),
		allocVars: make(map[types.Object]ast.Node),
	}
	for _, l := range outer {
		c.loop = l
		for _, root := range loopRoots(l) {
			c.scan(root)
		}
	}
}

// outermost drops loops nested inside another loop's block set, so each
// region is scanned once (nested statements are still in scope through
// the outer loop's subtree).
func outermost(loops []*cfg.Loop) []*cfg.Loop {
	var out []*cfg.Loop
	for _, l := range loops {
		nested := false
		for _, o := range loops {
			if o != l && o.Blocks[l.Head] && !l.Blocks[o.Head] {
				nested = true
				break
			}
		}
		if !nested {
			out = append(out, l)
		}
	}
	return out
}

// loopRoots returns the AST roots to scan for a loop: the per-iteration
// parts of a structural loop (cond, post, body — the range expression
// runs once), or the raw block nodes of a goto-formed loop.
func loopRoots(l *cfg.Loop) []ast.Node {
	switch s := l.Stmt.(type) {
	case *ast.ForStmt:
		var roots []ast.Node
		if s.Cond != nil {
			roots = append(roots, s.Cond)
		}
		if s.Post != nil {
			roots = append(roots, s.Post)
		}
		return append(roots, s.Body)
	case *ast.RangeStmt:
		return []ast.Node{s.Body}
	default:
		var roots []ast.Node
		for b := range l.Blocks {
			for _, n := range b.Nodes {
				if r, ok := n.(*ast.RangeStmt); ok {
					n = r.X
				}
				roots = append(roots, n)
			}
		}
		return roots
	}
}

// onExitPath reports whether n sits under a return statement or a
// panic call: that code runs at most once, when the loop is left, so it
// is not a per-iteration cost.
func (c *checker) onExitPath(n ast.Node) bool {
	for p := c.parents[n]; p != nil; p = c.parents[p] {
		switch p := p.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := p.Fun.(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return true
				}
			}
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// parentMap records each node's syntactic parent within body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

type checker struct {
	pass     *analysis.Pass
	parents  map[ast.Node]ast.Node
	loop     *cfg.Loop
	reported map[token.Pos]bool

	// allocVars maps loop-local variables to the fresh reference
	// allocation they were := bound to, so indirect retention
	// (`row := make(...); rows = append(rows, row)`) is traced back to
	// the allocation site.
	allocVars map[types.Object]ast.Node
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	if c.pass.Suppressed(pos) {
		c.reported[pos] = true
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// scan walks one loop root, flagging per-iteration allocation patterns.
// FuncLit bodies are not entered: code inside a closure runs when the
// closure is called, not per loop iteration (the closure itself is
// checked as an escaping allocation). Allocation on a return or panic
// path executes at most once per loop — it is the exit, not an
// iteration — and is exempt throughout.
func (c *checker) scan(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !c.onExitPath(n) {
				c.refAlloc(n, "closure")
			}
			return false
		case *ast.CallExpr:
			if !c.onExitPath(n) {
				c.call(n)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isString(n) && !c.isConst(n) && !c.onExitPath(n) {
				c.report(n.OpPos, "string concatenation allocates every iteration of this loop: build into a strings.Builder or byte scratch hoisted out of the loop")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && c.isString(n.Lhs[0]) {
				c.report(n.TokPos, "string += allocates every iteration of this loop: build into a strings.Builder or byte scratch hoisted out of the loop")
			}
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if alloc := refAllocExpr(c.pass, n.Rhs[i]); alloc != nil {
						if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
							c.allocVars[obj] = alloc
						}
					}
				}
			}
		case *ast.CompositeLit:
			if isRefLiteral(c.pass, n) {
				c.refAlloc(n, describeLit(c.pass, n))
				return true
			}
			// &T{...}: judged at the unary & via refAlloc below.
			if p, ok := c.parents[n].(*ast.UnaryExpr); ok && p.Op == token.AND {
				c.refAlloc(p, "&"+types.ExprString(n.Type)+"{...}")
			}
		}
		return true
	})
}

// call inspects one call expression for the fmt, conversion, make/new
// and append patterns.
func (c *checker) call(call *ast.CallExpr) {
	// fmt.Sprintf and friends.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && fmtAllocFuncs[sel.Sel.Name] {
			c.report(call.Pos(), "fmt.%s allocates every iteration of this loop: hoist the formatting out of the hot path or build into a reused buffer", sel.Sel.Name)
			return
		}
	}
	// Type conversions []byte(s) / string(b).
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := c.pass.TypesInfo.TypeOf(call.Args[0])
		if from != nil && !c.isConst(call.Args[0]) {
			if isByteSlice(to) && isStringType(from.Underlying()) {
				c.report(call.Pos(), "[]byte(string) conversion copies every iteration of this loop: reuse a scratch buffer or operate on the string directly")
			} else if isStringType(to) && isByteSlice(from.Underlying()) && !c.mapReadKey(call) {
				c.report(call.Pos(), "string([]byte) conversion copies every iteration of this loop: keep the bytes or intern outside the loop")
			}
		}
		return
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "append":
				c.append(call)
			case "make", "new":
				c.refAlloc(call, obj.Name()+"(...)")
			}
			return
		}
	}
}

// mapReadKey reports whether conv is the key of a map READ,
// `m[string(b)]` on the right-hand side: the compiler elides that
// conversion (no allocation), so only map writes pay for the key.
func (c *checker) mapReadKey(conv *ast.CallExpr) bool {
	ix, ok := c.parents[conv].(*ast.IndexExpr)
	if !ok || ix.Index != ast.Expr(conv) {
		return false
	}
	t := c.pass.TypesInfo.TypeOf(ix.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	if as, ok := c.parents[ix].(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if lhs == ast.Expr(ix) {
				return false // map write: the key is retained
			}
		}
	}
	return true
}

// append flags growing a slice that is declared inside the loop without
// preallocated capacity: every iteration regrows it from scratch.
func (c *checker) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := c.pass.TypesInfo.Uses[base].(*types.Var)
	if !ok {
		return
	}
	if !c.loop.Contains(obj.Pos()) {
		// The accumulator outlives the loop: any loop-local allocation
		// appended to it is retained, even through a variable.
		for _, a := range call.Args[1:] {
			id, ok := a.(*ast.Ident)
			if !ok {
				continue
			}
			if alloc, tracked := c.allocVars[c.pass.TypesInfo.Uses[id]]; tracked {
				c.report(alloc.Pos(), "%s is allocated every iteration of this loop and retained by append to %s, which outlives the loop: hoist or reuse it (or justify amortization with //cobra:hotalloc <reason>)", id.Name, obj.Name())
			}
		}
		return
	}
	if decl, uncapped := c.declOf(obj); uncapped {
		c.report(decl.Pos(), "%s is declared in this loop without capacity and grown by append: preallocate (make with capacity) or hoist a reused scratch slice out of the loop", obj.Name())
	}
}

// refAllocExpr returns the allocation node if e is a fresh reference
// allocation: make/new, a slice/map/struct composite literal (possibly
// behind &), or a closure.
func refAllocExpr(pass *analysis.Pass, e ast.Expr) ast.Node {
	switch e := e.(type) {
	case *ast.FuncLit:
		return e
	case *ast.CompositeLit:
		if isRefLiteral(pass, e) {
			return e
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				return e
			}
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "make" || b.Name() == "new") {
				return e
			}
		}
	}
	return nil
}

// declOf locates obj's declaring node within the function and reports
// whether it starts with no preallocated capacity: `var s []T`,
// `s := []T{}`, or `s := make([]T, 0)`.
func (c *checker) declOf(obj *types.Var) (ast.Node, bool) {
	for id, o := range c.pass.TypesInfo.Defs {
		if o != obj {
			continue
		}
		parent := c.parents[id]
		switch p := parent.(type) {
		case *ast.ValueSpec:
			if len(p.Values) == 0 {
				return id, true // var s []T
			}
			for i, name := range p.Names {
				if name == id && i < len(p.Values) {
					return id, uncappedInit(c.pass, p.Values[i])
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range p.Lhs {
				if lhs == ast.Expr(id) && i < len(p.Rhs) {
					return id, uncappedInit(c.pass, p.Rhs[i])
				}
			}
		}
		return id, false
	}
	return nil, false
}

// uncappedInit reports whether an initializer allocates an empty,
// capacity-less slice: `[]T{}`, `make([]T, 0)`, or a nil conversion.
func uncappedInit(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(e.Args) <= 2 {
			t := pass.TypesInfo.TypeOf(e)
			if t == nil {
				return false
			}
			if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
				return false
			}
			if len(e.Args) == 1 {
				return true // make([]T) is invalid anyway
			}
			tv := pass.TypesInfo.Types[e.Args[1]]
			return tv.Value != nil && tv.Value.String() == "0"
		}
	}
	return false
}

// refAlloc flags a reference-kind allocation (&T{}, make, new, map or
// slice literal, closure) when it escapes the loop body.
func (c *checker) refAlloc(n ast.Node, what string) {
	how, escapes := c.escapes(n)
	if !escapes {
		return
	}
	c.report(n.Pos(), "%s is allocated every iteration of this loop and %s: hoist it out of the loop or reuse a scratch value (or justify amortization with //cobra:hotalloc <reason>)", what, how)
}

// escapes climbs the parent chain of an allocation expression to decide
// whether the fresh object outlives the iteration: stored outside the
// loop, retained by an accumulator append, passed to a call, or sent on
// a channel. Returns a description of the escape route.
func (c *checker) escapes(n ast.Node) (string, bool) {
	cur := n
	for {
		parent := c.parents[cur]
		if parent == nil {
			return "", false
		}
		switch p := parent.(type) {
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				cur = parent
				continue
			}
			return "", false
		case *ast.ParenExpr, *ast.KeyValueExpr, *ast.CompositeLit:
			cur = parent
			continue
		case *ast.CallExpr:
			// An argument escapes into the callee; the callee itself
			// (an immediately-invoked closure) does not.
			if p.Fun == cur {
				return "", false
			}
			if id, ok := p.Fun.(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append":
						if len(p.Args) > 0 && p.Args[0] != cur {
							return c.appendEscape(p)
						}
						// Appending TO the fresh slice: judged by what
						// happens to the append result, one level up.
						cur = parent
						continue
					case "len", "cap", "copy", "delete", "clear":
						return "", false
					}
				}
			}
			return "is passed to a call made every iteration", true
		case *ast.AssignStmt:
			return c.assignEscape(p, cur)
		case *ast.ValueSpec:
			// var x = alloc: loop-local iff the spec is inside the loop.
			if c.loop.Contains(p.Pos()) {
				return "", false
			}
			return "is bound outside the loop", true
		case *ast.SendStmt:
			if p.Value == cur {
				return "is sent on a channel", true
			}
			return "", false
		case *ast.ReturnStmt, *ast.BranchStmt:
			// Returning/breaking ends the loop: not a per-iteration cost.
			return "", false
		case *ast.IndexExpr:
			if p.Index == cur {
				return "", false
			}
			cur = parent
			continue
		default:
			// Binary expressions, range/if/for clauses, expression
			// statements: the object is consumed within the iteration.
			return "", false
		}
	}
}

// appendEscape judges `append(acc, fresh)`: retained iff the
// accumulator lives outside the loop.
func (c *checker) appendEscape(call *ast.CallExpr) (string, bool) {
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return "is retained by append", true // field/index accumulator
	}
	obj, ok := c.pass.TypesInfo.Uses[base].(*types.Var)
	if !ok {
		return "", false
	}
	if c.loop.Contains(obj.Pos()) {
		return "", false // loop-local accumulator dies with the iteration
	}
	return fmt.Sprintf("is retained by append to %s, which outlives the loop", obj.Name()), true
}

// assignEscape judges `lhs = fresh` (or op-assign): escaping iff the
// destination outlives the iteration — a variable declared outside the
// loop, a field, an index, or a dereference.
func (c *checker) assignEscape(as *ast.AssignStmt, cur ast.Node) (string, bool) {
	idx := -1
	for i, r := range as.Rhs {
		if r == cur {
			idx = i
		}
	}
	if idx < 0 || idx >= len(as.Lhs) {
		// Multi-value RHS or mismatch: be conservative, not noisy.
		return "", false
	}
	switch lhs := as.Lhs[idx].(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return "", false
		}
		var obj types.Object
		if as.Tok == token.DEFINE {
			obj = c.pass.TypesInfo.Defs[lhs]
		} else {
			obj = c.pass.TypesInfo.Uses[lhs]
		}
		if obj == nil {
			return "", false
		}
		if c.loop.Contains(obj.Pos()) {
			return "", false // loop-local binding
		}
		return fmt.Sprintf("is stored in %s, which outlives the loop", lhs.Name), true
	case *ast.SelectorExpr:
		return "is stored in a field", true
	case *ast.IndexExpr:
		return c.indexEscape(lhs)
	case *ast.StarExpr:
		return "is stored through a pointer", true
	default:
		return "", false
	}
}

// indexEscape judges `container[i] = fresh`: escaping iff the container
// outlives the loop.
func (c *checker) indexEscape(ix *ast.IndexExpr) (string, bool) {
	if base, ok := ix.X.(*ast.Ident); ok {
		if obj, ok := c.pass.TypesInfo.Uses[base].(*types.Var); ok && c.loop.Contains(obj.Pos()) {
			return "", false
		}
		return fmt.Sprintf("is stored into %s, which outlives the loop", base.Name), true
	}
	return "is stored into a container", true
}

func (c *checker) isString(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	return t != nil && isStringType(t.Underlying())
}

func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isRefLiteral reports whether a composite literal allocates reference
// storage of its own (slice or map backing) as opposed to a plain
// struct/array value copied into place.
func isRefLiteral(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func describeLit(pass *analysis.Pass, lit *ast.CompositeLit) string {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return "composite literal"
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg)) + "{...}"
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
