package hotalloc_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "internal/polynomial/hotallocfix", "coldfix")
}
