// Package hotallocfix exercises the hot-loop allocation checker. Its
// import path sits under internal/polynomial so the hot-package gate
// admits it.
package hotallocfix

import "fmt"

type item struct{ v int }

type sink struct {
	items []*item
	byKey map[string]*item
}

// fmtInLoop: format machinery runs per iteration.
func fmtInLoop(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("x=%d", x)) // want `fmt\.Sprintf allocates every iteration`
	}
	return out
}

// concatInLoop: both the binary + and the += forms.
func concatInLoop(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want `string \+= allocates every iteration`
	}
	t := ""
	for range parts {
		t = t + "," // want `string concatenation allocates every iteration`
	}
	return s + t
}

// conversionsInLoop: []byte<->string copies per iteration.
func conversionsInLoop(keys []string, raw [][]byte) int {
	n := 0
	for _, k := range keys {
		n += len([]byte(k)) // want `\[\]byte\(string\) conversion copies every iteration`
	}
	for _, b := range raw {
		n += len(string(b)) // want `string\(\[\]byte\) conversion copies every iteration`
	}
	return n
}

// uncappedAppend: the per-iteration slice regrows from nil every time.
func uncappedAppend(rows [][]int) int {
	total := 0
	for _, row := range rows {
		var widths []int // want `widths is declared in this loop without capacity and grown by append`
		for _, v := range row {
			widths = append(widths, v)
		}
		total += len(widths)
	}
	return total
}

// cappedAppend is the fix: capacity is preallocated, so append never
// regrows. Not flagged.
func cappedAppend(rows [][]int) int {
	total := 0
	for _, row := range rows {
		widths := make([]int, 0, len(row))
		for _, v := range row {
			widths = append(widths, v)
		}
		total += len(widths)
	}
	return total
}

// escapeToOuter: fresh objects stored beyond the iteration.
func escapeToOuter(xs []int) *sink {
	s := &sink{byKey: make(map[string]*item)}
	var last *item
	for _, x := range xs {
		s.items = append(s.items, &item{v: x}) // want `&item\{\.\.\.\} is allocated every iteration of this loop and is retained by append`
		last = &item{v: x}                     // want `&item\{\.\.\.\} is allocated every iteration of this loop and is stored in last`
	}
	_ = last
	return s
}

// indirectRetention: the allocation escapes through a loop-local
// variable into an accumulator that outlives the loop.
func indirectRetention(rows [][]int) [][]int {
	out := make([][]int, 0, len(rows))
	for _, row := range rows {
		dup := make([]int, len(row)) // want `dup is allocated every iteration of this loop and retained by append to out`
		copy(dup, row)
		out = append(out, dup)
	}
	return out
}

// storedInField: assignment through a field escapes.
func storedInField(s *sink, xs []int) {
	for _, x := range xs {
		s.byKey["k"] = &item{v: x} // want `&item\{\.\.\.\} is allocated every iteration of this loop and is stored into a container`
	}
}

// passedToCall: a fresh closure handed to a function every iteration.
func passedToCall(xs []int, run func(func() int)) {
	for _, x := range xs {
		run(func() int { return x }) // want `closure is allocated every iteration of this loop and is passed to a call`
	}
}

// loopLocalUse: the allocation never outlives the iteration. Not
// flagged — stack allocation or reuse is the compiler's problem.
func loopLocalUse(xs []int) int {
	n := 0
	for _, x := range xs {
		scratch := make([]int, 0, 4)
		scratch = append(scratch, x)
		n += len(scratch)
	}
	return n
}

// suppressed: deliberate amortized allocation with a justification.
func suppressed(xs []int) []*item {
	out := make([]*item, 0, len(xs))
	for _, x := range xs {
		//cobra:hotalloc one node per result row is the output itself, not overhead
		out = append(out, &item{v: x})
	}
	return out
}

// mapKeyForms: a map read keyed by string(bytes) is elided by the
// compiler (no allocation); a map write retains the key and pays.
func mapKeyForms(index map[string]int, keys [][]byte) int {
	n := 0
	for _, b := range keys {
		n += index[string(b)] // read: elided, not flagged
	}
	for i, b := range keys {
		index[string(b)] = i // want `string\(\[\]byte\) conversion copies every iteration`
	}
	return n
}

// errorExit: allocation under a return or panic runs once, at loop
// exit, not per iteration. Not flagged.
func errorExit(xs []int) error {
	for i, x := range xs {
		if x < 0 {
			return fmt.Errorf("negative value %d at index %d", x, i)
		}
		if x > 1<<30 {
			panic(fmt.Sprintf("implausible value %d", x))
		}
	}
	return nil
}

// coldFunctionShape: the same patterns outside any loop are fine.
func coldFunctionShape(x int) string {
	s := fmt.Sprintf("x=%d", x)
	b := []byte(s)
	return string(b)
}
