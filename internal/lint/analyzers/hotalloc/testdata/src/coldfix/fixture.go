// Package coldfix holds the same allocation patterns as the hot
// fixture but lives outside the hot packages: the analyzer must stay
// silent here.
package coldfix

import "fmt"

func formatAll(xs []int) []string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprintf("x=%d", x))
	}
	return out
}

func join(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p
	}
	return s
}
