// Package determinism flags iteration over maps in the packages whose
// output order is part of COBRA's contract. Compressed provenance is
// only trustworthy because every answer is bit-identical for any
// Workers count and any storage backend; a `for k := range m` whose
// visit order can reach serialized output silently breaks that.
//
// A map range is accepted when it is the sorted-keys idiom — the loop
// body only collects into a slice that a later statement in the same
// block passes to sort.* or slices.Sort* — or when the site carries a
// `//cobra:deterministic <reason>` justification explaining why order
// cannot be observed.
package determinism

import (
	"go/ast"
	"go/types"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name:      "determinism",
	Directive: "deterministic",
	Doc: "flag map iteration in order-sensitive packages\n\n" +
		"In internal/{core,polynomial,abstraction,valuation,polyio,provenance},\n" +
		"ranging over a map is forbidden unless the keys are sorted at the site\n" +
		"(collect-then-sort in the same block) or the line carries a\n" +
		"//cobra:deterministic <reason> justification.",
	Run: run,
}

// watched lists the packages (module-relative) whose iteration order
// can reach bit-exact outputs: the compression core, the polynomial
// representation and its serialization, abstraction trees, valuation,
// and provenance capture.
var watched = []string{
	"internal/core",
	"internal/polynomial",
	"internal/abstraction",
	"internal/valuation",
	"internal/polyio",
	"internal/provenance",
}

func run(pass *analysis.Pass) error {
	if !analysis.PathIn(pass.Pkg.Path(), watched...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				check(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if analysis.IsTestFile(pass.Fset, rs.Pos()) {
		return
	}
	if sortedCollect(pass, rs, rest) {
		return
	}
	if pass.Suppressed(rs.Pos()) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map %s in order-sensitive package %s: sort the keys at this site or justify with //cobra:deterministic <reason>",
		types.ExprString(rs.X), analysis.RelPkgPath(pass.Pkg.Path()))
}

// sortedCollect recognizes the one blessed map-range shape: the body is
// exactly `s = append(s, ...)` into a simple local slice, and a
// following statement in the same block sorts s (sort.* or slices.*).
// Anything subtler must be justified.
func sortedCollect(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != lhs.Name {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(lhs)
	if obj == nil {
		return false
	}
	for _, s := range rest {
		if stmtSorts(pass, s, obj) {
			return true
		}
	}
	return false
}

// stmtSorts reports whether s is (or contains at its top level) a call
// into the sort or slices package mentioning obj among its arguments.
func stmtSorts(pass *analysis.Pass, s ast.Stmt, obj types.Object) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.ObjectOf(pkgIdent).(*types.PkgName)
	if !ok {
		return false
	}
	if p := pn.Imported().Path(); p != "sort" && p != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}
