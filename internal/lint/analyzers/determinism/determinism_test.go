package determinism_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "internal/core", "internal/sql")
}
