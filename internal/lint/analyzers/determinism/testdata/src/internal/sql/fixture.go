// Package sql is a determinism fixture for an unwatched package: map
// ranges here are not order-sensitive (the SQL planner sorts its own
// outputs) and must produce no findings.
package sql

func unwatched(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
