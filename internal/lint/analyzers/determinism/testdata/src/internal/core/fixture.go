// Package core is a determinism fixture standing in for a watched
// package (its import path is "internal/core").
package core

import "sort"

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m in order-sensitive package internal/core`
		total += v
	}
	return total
}

func sortedCollectIdiom(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m`
		keys = append(keys, k)
	}
	return keys
}

func justified(m map[string]int) int {
	n := 0
	//cobra:deterministic counting is order-insensitive
	for range m {
		n++
	}
	return n
}

func justifiedTrailing(m map[string]int) {
	for k := range m { //cobra:deterministic delete during range is order-insensitive
		delete(m, k)
	}
}

func badJustification(m map[string]int) int {
	n := 0
	//cobra:deterministic // want `needs a non-empty justification`
	for range m { // want `range over map m`
		n++
	}
	return n
}

func sliceRangeIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
