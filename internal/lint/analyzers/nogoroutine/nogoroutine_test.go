package nogoroutine_test

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysistest"
	"github.com/cobra-prov/cobra/internal/lint/analyzers/nogoroutine"
)

func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "internal/core", "internal/parallel")
}
