// Package core is a nogoroutine fixture standing in for a
// non-exempt library package.
package core

func spawns(ch chan int) {
	go func() { ch <- 1 }() // want `go statement outside internal/parallel and serve`
}

func justified(ch chan int) {
	//cobra:goroutine fire-and-forget metrics flush, joined at shutdown
	go func() { ch <- 1 }()
}

func sequentialIsFine(ch chan int) {
	ch <- 1
}
