// Package parallel is a nogoroutine fixture for the exempt pool
// package: it may spawn goroutines freely.
package parallel

func pool(ch chan int) {
	go func() { ch <- 1 }()
}
