// Package nogoroutine forbids `go` statements outside the two places
// allowed to own concurrency: internal/parallel (the worker pool every
// parallel stage must flow through, so answers stay bit-identical for
// any Workers count) and serve (request lifecycle). A stray goroutine
// anywhere else bypasses the pool's deterministic shard merge and the
// Dataset single-flight machinery.
package nogoroutine

import (
	"go/ast"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
)

// Analyzer is the goroutine-containment checker.
var Analyzer = &analysis.Analyzer{
	Name:      "nogoroutine",
	Directive: "goroutine",
	Doc: "forbid go statements outside internal/parallel and serve\n\n" +
		"Library parallelism must flow through the internal/parallel pool so\n" +
		"the any-Workers bit-identity guarantee holds. Test files are exempt;\n" +
		"elsewhere a goroutine needs //cobra:goroutine <reason>.",
	Run: run,
}

// exempt are the packages allowed to spawn goroutines directly.
var exempt = []string{
	"internal/parallel",
	"serve",
}

func run(pass *analysis.Pass) error {
	if analysis.PathIn(pass.Pkg.Path(), exempt...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if analysis.IsTestFile(pass.Fset, g.Pos()) {
				return true
			}
			if pass.Suppressed(g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(),
				"go statement outside internal/parallel and serve: route work through the parallel pool or justify with //cobra:goroutine <reason>")
			return true
		})
	}
	return nil
}
