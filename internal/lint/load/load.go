// Package load type-checks packages of this module for the lint suite
// without golang.org/x/tools: it shells out to `go list -export -json
// -deps` for package metadata and compiled export data (both work
// offline against the build cache), parses the target packages' source,
// and type-checks them with the standard library's gc importer reading
// dependencies from their export files.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// A Checker owns the shared FileSet and the export-data importer; all
// packages checked through one Checker see consistent positions and a
// shared cache of imported dependencies.
type Checker struct {
	Fset    *token.FileSet
	imp     types.Importer
	exports map[string]string // import path -> export data file
	targets []listPackage     // non-DepOnly packages from the listing
}

// NewChecker lists patterns (plus their full dependency closure) in
// moduleDir and prepares an importer over the resulting export data.
// Patterns follow `go list` syntax; "./..." covers the module.
func NewChecker(moduleDir string, patterns ...string) (*Checker, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,ImportMap,Incomplete,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint/load: go list: %v\n%s", err, stderr.String())
	}
	c := &Checker{Fset: token.NewFileSet(), exports: make(map[string]string)}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint/load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint/load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			c.exports[p.ImportPath] = p.Export
			// ImportMap rewrites source-level import paths (vendoring,
			// "vendor/" std shims) to the listed package; make the
			// export data reachable under the source-level spelling too.
			for src, mapped := range p.ImportMap {
				if mapped == p.ImportPath {
					c.exports[src] = p.Export
				}
			}
		}
		if !p.DepOnly && !p.Standard {
			c.targets = append(c.targets, p)
		}
	}
	c.initImporter()
	return c, nil
}

// NewCheckerFromExports prepares a Checker over an explicit import-path
// to export-file map — the shape `go vet` hands a vettool in its .cfg
// file (see cmd/cobra-lint's unit-checker mode).
func NewCheckerFromExports(exports map[string]string) *Checker {
	c := &Checker{Fset: token.NewFileSet(), exports: exports}
	c.initImporter()
	return c
}

func (c *Checker) initImporter() {
	c.imp = importer.ForCompiler(c.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := c.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint/load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Targets type-checks every non-dependency package from the listing —
// the packages the user's patterns named — in listing order.
func (c *Checker) Targets() ([]*Package, error) {
	pkgs := make([]*Package, 0, len(c.targets))
	for _, t := range c.targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		p, err := c.Check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Check parses and type-checks one package from explicit source files.
func (c *Checker) Check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(c.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint/load: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: c.imp}
	tpkg, err := conf.Check(importPath, c.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint/load: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       c.Fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
