package load

import (
	"os/exec"
	"strings"
	"testing"
)

func moduleDir(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

func TestTargetsTypeCheck(t *testing.T) {
	c, err := NewChecker(moduleDir(t), "./internal/polynomial", "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := c.Targets()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	poly := byPath["github.com/cobra-prov/cobra/internal/polynomial"]
	if poly == nil {
		t.Fatalf("polynomial package not loaded; got %v", pkgs)
	}
	if poly.Types.Scope().Lookup("SetSink") == nil {
		t.Error("polynomial.SetSink not found in type-checked scope")
	}
	eng := byPath["github.com/cobra-prov/cobra/internal/engine"]
	if eng == nil || eng.Types.Scope().Lookup("Iterator") == nil {
		t.Error("engine.Iterator not found in type-checked scope")
	}
	// The engine package imports polynomial; the importer must have
	// resolved it from export data.
	if len(eng.TypesInfo.Defs) == 0 {
		t.Error("TypesInfo not populated")
	}
}
