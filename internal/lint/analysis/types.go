package analysis

import "go/types"

// FindPackage returns the package with the given import path among pkg
// itself and its transitive imports, or nil. Analyzers use it to
// resolve the COBRA types their invariants are phrased in terms of
// (engine.Iterator, polynomial.SetSink) whether the pass is over that
// very package, over a package importing it, or over an analysistest
// fixture that imports it.
func FindPackage(pkg *types.Package, path string) *types.Package {
	if pkg == nil {
		return nil
	}
	if pkg.Path() == path {
		return pkg
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}

// FindInterface resolves a named interface type (by package path and
// type name) reachable from pkg, or nil if the package is not in pkg's
// import graph.
func FindInterface(pkg *types.Package, path, name string) *types.Interface {
	p := FindPackage(pkg, path)
	if p == nil {
		return nil
	}
	obj := p.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// ImplementsOrIs reports whether t (or a pointer to it) satisfies
// iface, including t being iface itself or any other interface whose
// method set subsumes it.
func ImplementsOrIs(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}
