// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package at a time and reports position-anchored
// diagnostics. It exists because the COBRA lint suite (cmd/cobra-lint)
// must build offline from the standard library alone; the API mirrors
// the x/tools shape closely enough that the analyzers could be ported
// to real go/analysis Analyzers mechanically.
//
// Unlike x/tools, there is no Fact mechanism and no analyzer
// dependency graph: every COBRA invariant is checkable from a single
// package's syntax and types, which keeps the driver (and the `go vet
// -vettool` unit-checker protocol in cmd/cobra-lint) trivial.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and enable/disable
	// flags. It must be a valid identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Directive is the suffix of the `//cobra:<directive> <reason>`
	// comment that suppresses this analyzer's findings at a site
	// (empty if the analyzer has no escape hatch).
	Directive string

	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test source files of the package
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver supplies it.
	Report func(Diagnostic)

	directives map[*ast.File]*DirectiveIndex
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a finding of the pass's analyzer at pos is
// suppressed by a justification comment: a `//cobra:<directive> <reason>`
// comment on the flagged line or standing alone on the line(s)
// immediately above it. A directive whose reason is empty does not
// suppress anything — instead Suppressed reports the malformed
// directive itself, so an annotation can never silence a finding
// without saying why.
func (p *Pass) Suppressed(pos token.Pos) bool {
	if p.Analyzer.Directive == "" {
		return false
	}
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	if p.directives == nil {
		p.directives = make(map[*ast.File]*DirectiveIndex)
	}
	idx, ok := p.directives[f]
	if !ok {
		idx = IndexDirectives(p.Fset, f)
		p.directives[f] = idx
		// Malformed directives are reported once per file, the first
		// time any finding consults the index.
		for _, d := range idx.malformed(p.Analyzer.Directive) {
			p.Reportf(d.Pos, "//cobra:%s directive needs a non-empty justification (\"//cobra:%s <reason>\")", p.Analyzer.Directive, p.Analyzer.Directive)
		}
	}
	return idx.Allows(p.Analyzer.Directive, p.Fset.Position(pos).Line)
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// A Directive is one parsed `//cobra:<name> <reason>` comment.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Pos
	// Line is the source line the directive justifies: its own line
	// for a trailing comment, the line after the comment group for a
	// standalone comment.
	Line int
}

// DirectiveIndex holds the parsed //cobra: directives of one file.
type DirectiveIndex struct {
	byName map[string][]Directive
}

// DirectivePrefix introduces every justification comment.
const DirectivePrefix = "//cobra:"

// IndexDirectives parses all //cobra: directives in f.
func IndexDirectives(fset *token.FileSet, f *ast.File) *DirectiveIndex {
	idx := &DirectiveIndex{byName: make(map[string][]Directive)}
	// Distinguish trailing comments (justify their own line) from
	// standalone comment groups (justify the next source line): a
	// comment is "trailing" when non-comment tokens precede it on its
	// line. Approximation: compare the comment's column to the line's
	// first non-blank column via the file's line start — instead we use
	// the simpler, robust rule that a directive justifies both its own
	// line and the line following its comment group; flagged nodes
	// always live on one of those.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			// A nested comment (e.g. an analysistest `// want`
			// expectation) is not a justification.
			reason, _, _ = strings.Cut(reason, "//")
			d := Directive{
				Name:   name,
				Reason: strings.TrimSpace(reason),
				Pos:    c.Pos(),
				Line:   fset.Position(c.Pos()).Line,
			}
			idx.byName[name] = append(idx.byName[name], d)
		}
	}
	return idx
}

// Allows reports whether a directive named name justifies a finding on
// line: the directive sits on that line or on the line immediately
// above, and carries a non-empty reason.
func (idx *DirectiveIndex) Allows(name string, line int) bool {
	for _, d := range idx.byName[name] {
		if d.Reason == "" {
			continue
		}
		if d.Line == line || d.Line == line-1 {
			return true
		}
	}
	return false
}

// malformed returns the directives named name with an empty reason,
// in file order.
func (idx *DirectiveIndex) malformed(name string) []Directive {
	var out []Directive
	for _, d := range idx.byName[name] {
		if d.Reason == "" {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ModulePath is the import-path prefix of the COBRA module. Analyzers
// compare package paths with it stripped, so analysistest fixtures
// (whose package paths are testdata-relative, e.g. "internal/core")
// exercise the same path logic as the real tree.
const ModulePath = "github.com/cobra-prov/cobra"

// RelPkgPath strips the module prefix from a package path. Paths from
// other modules (the standard library) are returned unchanged.
func RelPkgPath(pkgPath string) string {
	if pkgPath == ModulePath {
		return "."
	}
	return strings.TrimPrefix(pkgPath, ModulePath+"/")
}

// PathIn reports whether pkgPath, relative to the module, equals one of
// the listed package paths or is nested beneath one.
func PathIn(pkgPath string, list ...string) bool {
	rel := RelPkgPath(pkgPath)
	for _, p := range list {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Most COBRA invariants bind library code only: tests are the
// callers that pin behavior, and may spawn goroutines, use seeded
// math/rand, or construct root contexts freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
