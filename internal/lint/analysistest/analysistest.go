// Package analysistest runs a lint analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want` comments —
// a self-contained miniature of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture package lives at testdata/src/<path>/ relative to the
// calling test's package directory, and is type-checked with <path> as
// its import path, so fixtures named like real module packages (e.g.
// "internal/core") exercise the analyzers' package-path gating.
// Fixtures may import real module packages; imports resolve against
// the module's compiled export data.
//
// Expectations are written on the offending line:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string after `want` is a regexp that
// must match exactly one diagnostic reported on that line; diagnostics
// without a matching want (and wants without a matching diagnostic)
// fail the test.
package analysistest

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
	"github.com/cobra-prov/cobra/internal/lint/load"
)

var (
	checkerOnce sync.Once
	checker     *load.Checker
	checkerErr  error
)

// sharedChecker builds one Checker over the whole module per test
// process; fixtures of every analyzer resolve imports through it.
func sharedChecker() (*load.Checker, error) {
	checkerOnce.Do(func() {
		out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
		if err != nil {
			checkerErr = fmt.Errorf("analysistest: go list -m: %v", err)
			return
		}
		checker, checkerErr = load.NewChecker(strings.TrimSpace(string(out)))
	})
	return checker, checkerErr
}

// Run checks a, one fixture package per path, against its want
// expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	c, err := sharedChecker()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkgPath := range pkgPaths {
		runOne(t, c, a, pkgPath)
	}
}

func runOne(t *testing.T, c *load.Checker, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", a.Name, dir)
	}
	sort.Strings(files)
	pkg, err := c.Check(pkgPath, dir, files)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			got[key{p.Filename, p.Line}] = append(got[key{p.Filename, p.Line}], d.Message)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: Run: %v", a.Name, err)
	}

	// Collect wants per line from the fixture comments.
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				wants := parseWants(t, cmt.Text)
				if wants == nil {
					continue
				}
				line := pkg.Fset.Position(cmt.Pos()).Line
				k := key{fname, line}
				msgs := got[k]
				for _, w := range wants {
					idx := -1
					for i, m := range msgs {
						if w.MatchString(m) {
							idx = i
							break
						}
					}
					if idx < 0 {
						t.Errorf("%s: %s:%d: no diagnostic matching %q (got %v)", a.Name, fname, line, w, msgs)
						continue
					}
					msgs = append(msgs[:idx], msgs[idx+1:]...)
				}
				if len(msgs) == 0 {
					delete(got, k)
				} else {
					got[k] = msgs
				}
			}
		}
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s: %s:%d: unexpected diagnostic: %s", a.Name, k.file, k.line, m)
		}
	}
}

// parseWants extracts the regexps of a `// want "..." `...“ comment,
// or nil if the comment carries no want directive.
func parseWants(t *testing.T, text string) []*regexp.Regexp {
	t.Helper()
	rest, ok := cutWant(text)
	if !ok {
		return nil
	}
	var out []*regexp.Regexp
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		var lit string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("unterminated want pattern in %q", text)
			}
			lit, rest = rest[1:1+end], rest[2+end:]
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("bad want pattern in %q: %v", text, err)
			}
			unq, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("bad want pattern in %q: %v", text, err)
			}
			lit, rest = unq, rest[len(q):]
		default:
			t.Fatalf("want patterns must be quoted or backquoted in %q", text)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
	}
	if len(out) == 0 {
		t.Fatalf("want directive with no patterns in %q", text)
	}
	return out
}

// cutWant finds the `want` directive inside a line comment: either the
// comment's leading token (`// want "..."`) or a nested comment later
// in the line (`//cobra:deterministic // want "..."`), so fixtures can
// attach expectations to directive lines. Prose mentioning "want" in
// other positions is ignored.
func cutWant(text string) (string, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return "", false
	}
	if i := strings.LastIndex(body, "// want "); i >= 0 {
		return body[i+len("// want "):], true
	}
	trimmed := strings.TrimSpace(body)
	if rest, ok := strings.CutPrefix(trimmed, "want "); ok {
		return rest, true
	}
	return "", false
}
