# COBRA build/test/bench entry points. CI (.github/workflows/ci.yml) runs
# the same steps; `make bench` records the perf trajectory in BENCH_core.json.

GO ?= go

.PHONY: all build test race vet vuln staticcheck cobra-lint cobra-escape lint fmt-check cover bench bench-quick serve-bench ci

all: build

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package, so inter-test
# state dependencies cannot hide.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# Known-vulnerability scan (network required; CI runs this too).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# Static analysis beyond go vet (network required; CI runs this too).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@latest ./...

# The repo's own go/analysis suite (cmd/cobra-lint, a `tool` in go.mod):
# determinism, goroutine discipline, iterator lifecycle, sink errors,
# context flow and wall-clock hygiene. Stdlib-only — runs offline.
# `go tool -n` builds the tool and prints its path for -vettool.
cobra-lint:
	$(GO) vet -vettool=$$($(GO) tool -n cobra-lint) ./...

# Heap-escape ratchet (cmd/cobra-escape, also a `tool` in go.mod):
# recompiles the hot packages with -gcflags=-m=2 (replayed from the build
# cache when warm), inventories the escape sites per function into
# ESCAPES.json, and fails if any function exceeds escape_budget.json.
# Re-baseline deliberately with `go tool cobra-escape -update`.
cobra-escape:
	$(GO) tool cobra-escape

# Full lint gate: the in-repo analyzers and escape ratchet plus the
# network-dependent tools.
lint: cobra-lint cobra-escape staticcheck vuln

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

# Per-package coverage summary + total; coverage.out feeds `go tool cover
# -html` locally and is published as a CI artifact.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Run the E1–E9 and E14–E16 experiment benchmarks plus the
# parallel-vs-sequential and sweep-vs-recompress pairs and write
# BENCH_core.json (fails without writing on any benchmark error; see
# scripts/bench.sh for knobs).
bench:
	sh scripts/bench.sh

# One-iteration smoke of the cheapest experiment benchmark — what CI runs.
bench-quick:
	$(GO) test -run='^$$' -bench='^BenchmarkE1_' -benchtime=1x .

# Sustained cobra-serve HTTP throughput (EvalBatch req/s with a hard
# floor, BENCH_SERVE_MIN=1000 by default); records BENCH_serve.json.
serve-bench:
	sh scripts/bench_serve.sh

ci: fmt-check vet cobra-lint cobra-escape build race bench-quick serve-bench
