package cobra_test

import (
	"context"
	"fmt"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

// optionsFixture builds a small set and tree for the edge-value sweeps.
func optionsFixture(t *testing.T) (*cobra.Names, *cobra.Set, *cobra.Tree) {
	t.Helper()
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	for z := 0; z < 40; z++ {
		// One shared month per group, so cutting the plans tree merges
		// monomials and the halved bound is feasible.
		set.Add(fmt.Sprintf("zip%d", z), cobra.MustParsePolynomial(
			fmt.Sprintf("%d*p1*m%d + %d*p2*m%d + %d*p3*m%d",
				10+z, z%12+1, 20+z, z%12+1, 30+z, z%12+1), names))
	}
	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Std", "p1"}, []string{"Std", "p2"}, []string{"Special", "p3"})
	if err != nil {
		t.Fatal(err)
	}
	return names, set, tree
}

// TestOptionsWorkersEdgeValues: negative and zero Workers must behave
// exactly like the documented sequential default (Workers <= 1), across
// compression, application, valuation, SQL and capture entry points.
func TestOptionsWorkersEdgeValues(t *testing.T) {
	names, set, tree := optionsFixture(t)
	bound := set.Size() / 2
	want, err := cobra.Compress(set, cobra.Forest{tree}, bound)
	if err != nil {
		t.Fatal(err)
	}
	wantApplied := cobra.Apply(set, want.Cuts...)

	a := cobra.NewAssignment(names)
	if err := a.Set("m3", 0.8); err != nil {
		t.Fatal(err)
	}
	wantRows := cobra.EvalBatch(cobra.Compile(set), []*cobra.Assignment{a}, cobra.Options{})

	for _, w := range []int{-7, -1, 0} {
		opts := cobra.Options{Workers: w}
		got, err := cobra.CompressWith(set, cobra.Forest{tree}, bound, opts)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if got.Size != want.Size || !got.Cuts[0].Equal(want.Cuts[0]) {
			t.Fatalf("Workers=%d: compress differs", w)
		}
		if applied := cobra.ApplyWith(set, opts, got.Cuts...); applied.String() != wantApplied.String() {
			t.Fatalf("Workers=%d: apply differs", w)
		}
		rows := cobra.EvalBatch(cobra.Compile(set), []*cobra.Assignment{a}, opts)
		for j := range wantRows[0] {
			if rows[0][j] != wantRows[0][j] {
				t.Fatalf("Workers=%d: eval differs at %d", w, j)
			}
		}
		if _, err := cobra.FrontierWith(set, tree, opts); err != nil {
			t.Fatalf("Workers=%d: frontier: %v", w, err)
		}
		answers, err := cobra.FrontierSweep(set, cobra.Forest{tree}, []int{bound}, opts)
		if err != nil {
			t.Fatalf("Workers=%d: sweep: %v", w, err)
		}
		if len(answers) != 1 || answers[0].Err != nil ||
			answers[0].Result.Size != want.Size || !answers[0].Result.Cuts[0].Equal(want.Cuts[0]) {
			t.Fatalf("Workers=%d: sweep differs: %+v", w, answers[0])
		}
	}
}

// TestFrontierSweepEdgeValues: empty bound batches, repeated and negative
// bounds, edge worker counts, and sharded sources must all answer exactly
// like per-bound compression — never panic or drift.
func TestFrontierSweepEdgeValues(t *testing.T) {
	_, set, tree := optionsFixture(t)
	forest := cobra.Forest{tree}
	bound := set.Size() / 2
	want, err := cobra.Compress(set, forest, bound)
	if err != nil {
		t.Fatal(err)
	}

	empty, err := cobra.FrontierSweep(set, forest, nil, cobra.Options{})
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty bounds: %v, %d answers", err, len(empty))
	}

	bounds := []int{bound, -1, bound, 0, set.Size() * 10}
	for _, w := range []int{-7, 0, 1, 8} {
		answers, err := cobra.FrontierSweep(set, forest, bounds, cobra.Options{Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if len(answers) != len(bounds) {
			t.Fatalf("Workers=%d: %d answers for %d bounds", w, len(answers), len(bounds))
		}
		for i, a := range answers {
			cw, cwErr := cobra.CompressWith(set, forest, bounds[i], cobra.Options{Workers: w})
			if (a.Err == nil) != (cwErr == nil) {
				t.Fatalf("Workers=%d bound %d: sweep err=%v compress err=%v", w, bounds[i], a.Err, cwErr)
			}
			if a.Err != nil {
				if a.Err.Error() != cwErr.Error() {
					t.Fatalf("Workers=%d bound %d: errors differ: %q vs %q", w, bounds[i], a.Err, cwErr)
				}
				continue
			}
			if a.Result.Size != cw.Size || a.Result.NumMeta != cw.NumMeta || !a.Result.Cuts[0].Equal(cw.Cuts[0]) {
				t.Fatalf("Workers=%d bound %d: sweep %+v != compress %+v", w, bounds[i], a.Result, cw)
			}
		}
		// Repeated bounds answer consistently.
		if answers[0].Result.Size != answers[2].Result.Size || !answers[0].Result.Cuts[0].Equal(answers[2].Result.Cuts[0]) {
			t.Fatalf("Workers=%d: duplicate bounds answered differently", w)
		}
	}

	// The same sweep over a spilled sharded source.
	ss, err := cobra.ShardSet(set, cobra.Options{MaxResidentMonomials: set.Size() / 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	answers, err := cobra.FrontierSweep(ss, forest, []int{bound}, cobra.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Err != nil || answers[0].Result.Size != want.Size || !answers[0].Result.Cuts[0].Equal(want.Cuts[0]) {
		t.Fatalf("sharded sweep differs: %+v", answers[0])
	}
	dsf, err := cobra.OpenDataset("sweep", ss, cobra.Forest{tree}, cobra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := dsf.Frontier(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := cobra.Frontier(set, tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(inMem) {
		t.Fatalf("sharded Frontier: %d points vs %d", len(curve), len(inMem))
	}
	for i := range curve {
		if curve[i].NumMeta != inMem[i].NumMeta || curve[i].MinSize != inMem[i].MinSize || !curve[i].Cut.Equal(inMem[i].Cut) {
			t.Fatalf("sharded Frontier point %d differs: %+v vs %+v", i, curve[i], inMem[i])
		}
	}
}

// TestOptionsResidencyEdgeValues: zero and negative MaxResidentMonomials
// must behave like the documented default — spilling disabled, everything
// resident — not panic, not spill, not truncate.
func TestOptionsResidencyEdgeValues(t *testing.T) {
	_, set, tree := optionsFixture(t)
	bound := set.Size() / 2
	want, err := cobra.Compress(set, cobra.Forest{tree}, bound)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, -1, -1 << 30} {
		opts := cobra.Options{MaxResidentMonomials: budget}
		ss, err := cobra.ShardSet(set, opts)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if ss.SpilledShards() != 0 {
			t.Fatalf("budget=%d: spilled %d shards with spilling disabled", budget, ss.SpilledShards())
		}
		if ss.Len() != set.Len() || ss.Size() != set.Size() {
			t.Fatalf("budget=%d: len/size %d/%d, want %d/%d", budget, ss.Len(), ss.Size(), set.Len(), set.Size())
		}
		ds, err := cobra.OpenDataset("edge", ss, cobra.Forest{tree}, opts)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		got, err := ds.Compress(context.Background(), bound)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if got.Size != want.Size || !got.Cuts[0].Equal(want.Cuts[0]) {
			t.Fatalf("budget=%d: streamed compress differs", budget)
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("budget=%d: close: %v", budget, err)
		}
	}
}

// TestShardSetEmptySet: sharding an empty set must yield a usable,
// zero-shard set rather than panicking or spilling — and the streamed
// stages must handle it.
func TestShardSetEmptySet(t *testing.T) {
	names := cobra.NewNames()
	empty := cobra.NewSet(names)
	for _, opts := range []cobra.Options{{}, {MaxResidentMonomials: -3}, {MaxResidentMonomials: 4, Workers: -2}} {
		ss, err := cobra.ShardSet(empty, opts)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opts, err)
		}
		if ss.Len() != 0 || ss.Size() != 0 || ss.NumShards() != 0 || ss.SpilledShards() != 0 {
			t.Fatalf("opts=%+v: empty set sharded to len/size/shards/spilled %d/%d/%d/%d",
				opts, ss.Len(), ss.Size(), ss.NumShards(), ss.SpilledShards())
		}
		if vars := ss.UsedVars(); len(vars) != 0 {
			t.Fatalf("opts=%+v: empty set has %d used vars", opts, len(vars))
		}
		ds, err := cobra.OpenDataset("empty", ss, nil, opts)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opts, err)
		}
		rows, err := ds.EvalBatch(context.Background(), []*cobra.Assignment{cobra.NewAssignment(names)})
		if err != nil {
			t.Fatalf("opts=%+v: eval: %v", opts, err)
		}
		if len(rows) != 1 || len(rows[0]) != 0 {
			t.Fatalf("opts=%+v: eval rows %v", opts, rows)
		}
		back, err := ss.Materialize()
		if err != nil || back.Len() != 0 {
			t.Fatalf("opts=%+v: materialize: %v len %d", opts, err, back.Len())
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("opts=%+v: close: %v", opts, err)
		}
	}
}
