package cobra_test

import (
	"fmt"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

// optionsFixture builds a small set and tree for the edge-value sweeps.
func optionsFixture(t *testing.T) (*cobra.Names, *cobra.Set, *cobra.Tree) {
	t.Helper()
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	for z := 0; z < 40; z++ {
		// One shared month per group, so cutting the plans tree merges
		// monomials and the halved bound is feasible.
		set.Add(fmt.Sprintf("zip%d", z), cobra.MustParsePolynomial(
			fmt.Sprintf("%d*p1*m%d + %d*p2*m%d + %d*p3*m%d",
				10+z, z%12+1, 20+z, z%12+1, 30+z, z%12+1), names))
	}
	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Std", "p1"}, []string{"Std", "p2"}, []string{"Special", "p3"})
	if err != nil {
		t.Fatal(err)
	}
	return names, set, tree
}

// TestOptionsWorkersEdgeValues: negative and zero Workers must behave
// exactly like the documented sequential default (Workers <= 1), across
// compression, application, valuation, SQL and capture entry points.
func TestOptionsWorkersEdgeValues(t *testing.T) {
	names, set, tree := optionsFixture(t)
	bound := set.Size() / 2
	want, err := cobra.Compress(set, cobra.Forest{tree}, bound)
	if err != nil {
		t.Fatal(err)
	}
	wantApplied := cobra.Apply(set, want.Cuts...)

	a := cobra.NewAssignment(names)
	if err := a.Set("m3", 0.8); err != nil {
		t.Fatal(err)
	}
	wantRows := cobra.EvalBatch(cobra.Compile(set), []*cobra.Assignment{a}, cobra.Options{})

	for _, w := range []int{-7, -1, 0} {
		opts := cobra.Options{Workers: w}
		got, err := cobra.CompressWith(set, cobra.Forest{tree}, bound, opts)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if got.Size != want.Size || !got.Cuts[0].Equal(want.Cuts[0]) {
			t.Fatalf("Workers=%d: compress differs", w)
		}
		if applied := cobra.ApplyWith(set, opts, got.Cuts...); applied.String() != wantApplied.String() {
			t.Fatalf("Workers=%d: apply differs", w)
		}
		rows := cobra.EvalBatch(cobra.Compile(set), []*cobra.Assignment{a}, opts)
		for j := range wantRows[0] {
			if rows[0][j] != wantRows[0][j] {
				t.Fatalf("Workers=%d: eval differs at %d", w, j)
			}
		}
		if _, err := cobra.FrontierWith(set, tree, opts); err != nil {
			t.Fatalf("Workers=%d: frontier: %v", w, err)
		}
	}
}

// TestOptionsResidencyEdgeValues: zero and negative MaxResidentMonomials
// must behave like the documented default — spilling disabled, everything
// resident — not panic, not spill, not truncate.
func TestOptionsResidencyEdgeValues(t *testing.T) {
	_, set, tree := optionsFixture(t)
	bound := set.Size() / 2
	want, err := cobra.Compress(set, cobra.Forest{tree}, bound)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, -1, -1 << 30} {
		opts := cobra.Options{MaxResidentMonomials: budget}
		ss, err := cobra.ShardSet(set, opts)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if ss.SpilledShards() != 0 {
			t.Fatalf("budget=%d: spilled %d shards with spilling disabled", budget, ss.SpilledShards())
		}
		if ss.Len() != set.Len() || ss.Size() != set.Size() {
			t.Fatalf("budget=%d: len/size %d/%d, want %d/%d", budget, ss.Len(), ss.Size(), set.Len(), set.Size())
		}
		got, err := cobra.CompressStreamed(ss, cobra.Forest{tree}, bound, opts)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if got.Size != want.Size || !got.Cuts[0].Equal(want.Cuts[0]) {
			t.Fatalf("budget=%d: streamed compress differs", budget)
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("budget=%d: close: %v", budget, err)
		}
	}
}

// TestShardSetEmptySet: sharding an empty set must yield a usable,
// zero-shard set rather than panicking or spilling — and the streamed
// stages must handle it.
func TestShardSetEmptySet(t *testing.T) {
	names := cobra.NewNames()
	empty := cobra.NewSet(names)
	for _, opts := range []cobra.Options{{}, {MaxResidentMonomials: -3}, {MaxResidentMonomials: 4, Workers: -2}} {
		ss, err := cobra.ShardSet(empty, opts)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opts, err)
		}
		if ss.Len() != 0 || ss.Size() != 0 || ss.NumShards() != 0 || ss.SpilledShards() != 0 {
			t.Fatalf("opts=%+v: empty set sharded to len/size/shards/spilled %d/%d/%d/%d",
				opts, ss.Len(), ss.Size(), ss.NumShards(), ss.SpilledShards())
		}
		if vars := ss.UsedVars(); len(vars) != 0 {
			t.Fatalf("opts=%+v: empty set has %d used vars", opts, len(vars))
		}
		rows, err := cobra.EvalStreamed(ss, []*cobra.Assignment{cobra.NewAssignment(names)}, opts)
		if err != nil {
			t.Fatalf("opts=%+v: eval: %v", opts, err)
		}
		if len(rows) != 1 || len(rows[0]) != 0 {
			t.Fatalf("opts=%+v: eval rows %v", opts, rows)
		}
		back, err := ss.Materialize()
		if err != nil || back.Len() != 0 {
			t.Fatalf("opts=%+v: materialize: %v len %d", opts, err, back.Len())
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("opts=%+v: close: %v", opts, err)
		}
	}
}
